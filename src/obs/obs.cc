#include "src/obs/obs.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "src/common/log.h"

namespace oasis {
namespace obs {
namespace {

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

bool ObsConfig::TraceIsJsonl() const { return EndsWith(trace_path, ".jsonl"); }

ObsConfig ObsConfig::FromEnv() {
  ObsConfig config;
  if (const char* path = std::getenv("OASIS_TRACE")) {
    config.trace_path = path;
  }
  if (const char* path = std::getenv("OASIS_METRICS")) {
    config.metrics_path = path;
  }
  if (const char* cap = std::getenv("OASIS_TRACE_CAPACITY")) {
    long n = std::atol(cap);
    if (n > 0) {
      config.trace_capacity = static_cast<size_t>(n);
    }
  }
  if (const char* level = std::getenv("OASIS_LOG_LEVEL")) {
    config.log_level = level;
  }
  if (const char* seed = std::getenv("OASIS_SEED")) {
    char* end = nullptr;
    unsigned long long value = std::strtoull(seed, &end, 0);
    if (end != seed && *end == '\0') {
      config.has_seed = true;
      config.seed = static_cast<uint64_t>(value);
    } else {
      OASIS_LOG(kWarning) << "unparseable OASIS_SEED: " << seed;
    }
  }
  return config;
}

void TimingLine(const char* format, ...) {
  // One buffered write per line so parallel runs do not interleave
  // mid-line (mirrors the structured-log discipline in src/common/log).
  char line[512];
  int n = std::snprintf(line, sizeof(line), "[obs] ");
  va_list args;
  va_start(args, format);
  std::vsnprintf(line + n, sizeof(line) - static_cast<size_t>(n), format, args);
  va_end(args);
  std::fprintf(stderr, "%s\n", line);
}

bool ApplySeedOverride(uint64_t* seed) {
  ObsConfig config = ObsConfig::FromEnv();
  if (!config.has_seed) {
    return false;
  }
  OASIS_LOG(kInfo) << "OASIS_SEED=" << config.seed << " overrides seed " << *seed;
  *seed = config.seed;
  return true;
}

ObsScope::ObsScope(const ObsConfig& config) : config_(config) {
  if (!config_.log_level.empty()) {
    LogLevel level;
    if (ParseLogLevel(config_.log_level, &level)) {
      SetLogLevel(level);
    } else {
      OASIS_LOG(kWarning) << "unknown OASIS_LOG_LEVEL: " << config_.log_level;
    }
  }
  if (config_.TracingRequested()) {
    Tracer& tracer = Tracer::Global();
    tracer.SetCapacity(config_.trace_capacity);
    tracer.set_enabled(true);
  }
  if (config_.MetricsRequested()) {
    MetricsRegistry::SetEnabled(true);
  }
}

void ObsScope::Flush() {
  if (flushed_) {
    return;
  }
  flushed_ = true;
  if (config_.TracingRequested()) {
    Tracer& tracer = Tracer::Global();
    tracer.set_enabled(false);
    Status written = config_.TraceIsJsonl()
                         ? tracer.ExportJsonlFile(config_.trace_path)
                         : tracer.ExportChromeJsonFile(config_.trace_path);
    if (written.ok()) {
      std::fprintf(stderr, "[obs] %llu trace events (%llu dropped) -> %s\n",
                   static_cast<unsigned long long>(tracer.size()),
                   static_cast<unsigned long long>(tracer.dropped()),
                   config_.trace_path.c_str());
    } else {
      OASIS_LOG(kError) << "trace export failed: " << written.ToString();
    }
  }
  if (config_.MetricsRequested()) {
    MetricsRegistry::SetEnabled(false);
    Status written = MetricsRegistry::Global().WriteCsvFile(config_.metrics_path);
    if (written.ok()) {
      std::fprintf(stderr, "[obs] metrics -> %s\n", config_.metrics_path.c_str());
    } else {
      OASIS_LOG(kError) << "metrics export failed: " << written.ToString();
    }
  }
}

ObsScope::~ObsScope() { Flush(); }

}  // namespace obs
}  // namespace oasis
