// Process-level observability wiring.
//
// ObsConfig collects the environment-controlled knobs; ObsScope installs them
// on the global Tracer / MetricsRegistry for the duration of a binary's main
// and exports the collected data on the way out. Every bench/ and examples/
// binary opens an ObsScope first thing, so
//
//     OASIS_TRACE=trace.json ./build/bench/fig05_consolidation_latency
//
// emits a Perfetto-loadable trace with zero further plumbing.
//
// Environment variables:
//   OASIS_TRACE=<path>       enable tracing; ".jsonl" suffix selects JSONL,
//                            anything else Chrome trace_event JSON
//   OASIS_METRICS=<path>     enable metrics; CSV snapshot written at exit
//   OASIS_TRACE_CAPACITY=<n> ring-buffer size in events (default 65536)
//   OASIS_SEED=<n>           override the simulation seed; binaries apply it
//                            via ApplySeedOverride so one env var re-seeds
//                            every bench/example without editing code
//   OASIS_LOG_LEVEL=<level>  debug|info|warning|error|off

#ifndef OASIS_SRC_OBS_OBS_H_
#define OASIS_SRC_OBS_OBS_H_

#include <cstdint>
#include <string>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace oasis {
namespace obs {

struct ObsConfig {
  std::string trace_path;    // empty = tracing disabled
  std::string metrics_path;  // empty = metrics disabled
  size_t trace_capacity = Tracer::kDefaultCapacity;
  std::string log_level;  // empty = leave the global level alone
  bool has_seed = false;  // OASIS_SEED present and parseable
  uint64_t seed = 0;

  bool TracingRequested() const { return !trace_path.empty(); }
  bool MetricsRequested() const { return !metrics_path.empty(); }
  bool TraceIsJsonl() const;

  static ObsConfig FromEnv();
};

// Replaces *seed with the OASIS_SEED value when the env var is set (and logs
// the override so runs stay attributable). Returns true when it did.
bool ApplySeedOverride(uint64_t* seed);

// The wall-clock/timing output channel: one "[obs] "-tagged line on stderr
// (printf formatting; the newline is appended). Golden-file tests pin
// stdout byte-for-byte, so anything nondeterministic across machines —
// wall seconds, throughput, file paths — must go through here, never
// stdout. That keeps timing output free to grow without touching
// tests/golden/.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 1, 2)))
#endif
void TimingLine(const char* format, ...);

// RAII: enables the requested global collectors on construction, exports and
// disables them on destruction (or on an explicit Flush()).
class ObsScope {
 public:
  explicit ObsScope(const ObsConfig& config = ObsConfig::FromEnv());
  ~ObsScope();
  ObsScope(const ObsScope&) = delete;
  ObsScope& operator=(const ObsScope&) = delete;

  // Writes the trace/metrics files now and disables collection. Idempotent.
  void Flush();

  const ObsConfig& config() const { return config_; }

 private:
  ObsConfig config_;
  bool flushed_ = false;
};

}  // namespace obs
}  // namespace oasis

#endif  // OASIS_SRC_OBS_OBS_H_
