#include "src/obs/run_context.h"

#include "src/obs/prof.h"

namespace oasis {
namespace obs {
namespace {

thread_local RunContext* t_current = nullptr;

}  // namespace

RunContext::RunContext(size_t trace_capacity) : tracer_(trace_capacity) {
  // Construction cost shows up in the parallel runner's setup phase; the
  // profiler attributes it (ROADMAP suspects it in the jobs=4 loss).
  if (prof::Profiler::Enabled()) {
    prof::Profiler::Instance().AddCount(prof::Count::kRunContexts);
  }
}

void RunContext::MirrorGlobalEnables() {
  tracer_.set_enabled(Tracer::Global().enabled());
  metrics_.set_enabled(MetricsRegistry::Global().enabled());
}

void RunContext::MergeIntoGlobals() { MergeIntoGlobals(std::string()); }

void RunContext::MergeIntoGlobals(const std::string& metrics_prefix) {
  if (Tracer::Global().enabled()) {
    Tracer::Global().MergeFrom(tracer_);
  }
  if (MetricsRegistry::Global().enabled()) {
    MetricsRegistry::Global().MergeFrom(metrics_, metrics_prefix);
  }
}

RunContext* RunContext::Current() { return t_current; }

RunContext::Scope::Scope(RunContext* context) : previous_(t_current) {
  t_current = context;
}

RunContext::Scope::~Scope() { t_current = previous_; }

}  // namespace obs
}  // namespace oasis
