#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "src/obs/run_context.h"

namespace oasis {
namespace obs {

Histogram::Histogram(std::string name)
    : name_(std::move(name)), buckets_(kNumBuckets, 0) {}

size_t Histogram::BucketIndex(double value) {
  if (!(value > 0.0)) {
    return 0;  // zero, negatives and NaN share the underflow bucket
  }
  int exp = 0;
  double mantissa = std::frexp(value, &exp);  // value = mantissa * 2^exp, m in [0.5, 1)
  exp = std::clamp(exp, kMinExp, kMaxExp);
  int sub = static_cast<int>((mantissa - 0.5) * 2.0 * kSubBuckets);
  sub = std::clamp(sub, 0, kSubBuckets - 1);
  return 1 + static_cast<size_t>(exp - kMinExp) * kSubBuckets + static_cast<size_t>(sub);
}

double Histogram::BucketMidpoint(size_t index) {
  if (index == 0) {
    return 0.0;
  }
  size_t linear = index - 1;
  int exp = kMinExp + static_cast<int>(linear / kSubBuckets);
  int sub = static_cast<int>(linear % kSubBuckets);
  double lo = std::ldexp(0.5 + static_cast<double>(sub) / (2.0 * kSubBuckets), exp);
  double hi = std::ldexp(0.5 + static_cast<double>(sub + 1) / (2.0 * kSubBuckets), exp);
  return (lo + hi) / 2.0;
}

void Histogram::Record(double value) {
  ++buckets_[BucketIndex(value)];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

double Histogram::Percentile(double pct) const {
  if (count_ == 0) {
    return 0.0;
  }
  pct = std::clamp(pct, 0.0, 100.0);
  // The extremes are tracked exactly; only interior quantiles go through the
  // log-linear approximation.
  if (pct == 0.0) {
    return min_;
  }
  if (pct == 100.0) {
    return max_;
  }
  uint64_t target = static_cast<uint64_t>(std::ceil(pct / 100.0 * static_cast<double>(count_)));
  target = std::max<uint64_t>(target, 1);
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      return std::clamp(BucketMidpoint(i), min_, max_);
    }
  }
  return max_;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  Instrument& slot = instruments_[name];
  if (slot.gauge || slot.histogram) {
    return nullptr;
  }
  if (!slot.counter) {
    slot.counter.reset(new Counter(name));
  }
  return slot.counter.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  Instrument& slot = instruments_[name];
  if (slot.counter || slot.histogram) {
    return nullptr;
  }
  if (!slot.gauge) {
    slot.gauge.reset(new Gauge(name));
  }
  return slot.gauge.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  Instrument& slot = instruments_[name];
  if (slot.counter || slot.gauge) {
    return nullptr;
  }
  if (!slot.histogram) {
    slot.histogram.reset(new Histogram(name));
  }
  return slot.histogram.get();
}

void MetricsRegistry::ResetValues() {
  for (auto& [name, slot] : instruments_) {
    if (slot.counter) {
      slot.counter->value_ = 0;
    }
    if (slot.gauge) {
      slot.gauge->value_ = 0.0;
    }
    if (slot.histogram) {
      Histogram& h = *slot.histogram;
      std::fill(h.buckets_.begin(), h.buckets_.end(), 0);
      h.count_ = 0;
      h.sum_ = h.min_ = h.max_ = 0.0;
    }
  }
}

std::vector<MetricRow> MetricsRegistry::Snapshot() const {
  std::vector<MetricRow> rows;
  rows.reserve(instruments_.size());
  for (const auto& [name, slot] : instruments_) {
    MetricRow row;
    row.name = name;
    if (slot.counter) {
      row.kind = "counter";
      row.count = slot.counter->value();
      row.value = static_cast<double>(slot.counter->value());
    } else if (slot.gauge) {
      row.kind = "gauge";
      row.count = 1;
      row.value = slot.gauge->value();
    } else if (slot.histogram) {
      const Histogram& h = *slot.histogram;
      row.kind = "histogram";
      row.count = h.count();
      row.value = h.mean();
      row.min = h.min();
      row.p50 = h.Percentile(50.0);
      row.p90 = h.Percentile(90.0);
      row.p99 = h.Percentile(99.0);
      row.max = h.max();
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

void MetricsRegistry::WriteCsv(std::ostream& out) const {
  out << "name,kind,count,value,min,p50,p90,p99,max\n";
  for (const MetricRow& row : Snapshot()) {
    out << row.name << ',' << row.kind << ',' << row.count << ',' << row.value << ','
        << row.min << ',' << row.p50 << ',' << row.p90 << ',' << row.p99 << ','
        << row.max << '\n';
  }
}

Status MetricsRegistry::WriteCsvFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument("cannot open metrics file: " + path);
  }
  WriteCsv(out);
  return Status::Ok();
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  MergeFrom(other, std::string());
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other,
                                const std::string& prefix) {
  merge_dropped_ += other.merge_dropped_;
  for (const auto& [source_name, slot] : other.instruments_) {
    const std::string name = prefix.empty() ? source_name : prefix + source_name;
    if (slot.counter) {
      if (Counter* c = counter(name)) {
        c->Increment(slot.counter->value());
      } else {
        ++merge_dropped_;
      }
    } else if (slot.gauge) {
      if (Gauge* g = gauge(name)) {
        g->Set(slot.gauge->value());
      } else {
        ++merge_dropped_;
      }
    } else if (slot.histogram) {
      Histogram* h = histogram(name);
      if (h == nullptr) {
        ++merge_dropped_;
        continue;
      }
      const Histogram& o = *slot.histogram;
      if (o.count_ == 0) {
        continue;
      }
      for (size_t i = 0; i < o.buckets_.size(); ++i) {
        h->buckets_[i] += o.buckets_[i];
      }
      if (h->count_ == 0) {
        h->min_ = o.min_;
        h->max_ = o.max_;
      } else {
        h->min_ = std::min(h->min_, o.min_);
        h->max_ = std::max(h->max_, o.max_);
      }
      h->count_ += o.count_;
      h->sum_ += o.sum_;
    }
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

bool MetricsRegistry::Enabled() { return IfEnabled() != nullptr; }

MetricsRegistry* MetricsRegistry::IfEnabled() {
  if (RunContext* context = RunContext::Current()) {
    MetricsRegistry& local = context->metrics();
    return local.enabled() ? &local : nullptr;
  }
  MetricsRegistry& global = Global();
  return global.enabled() ? &global : nullptr;
}

}  // namespace obs
}  // namespace oasis
