// Named runtime metrics: counters, gauges and HDR-style log-linear
// histograms, collected in a process-wide registry and exportable as CSV.
//
// The registry is designed for hot-path instrumentation: sites cache the
// Counter/Gauge/Histogram pointer once (objects are never deleted or moved
// after creation) and gate the update on MetricsRegistry::Enabled(), a single
// relaxed atomic load, so a disabled build path costs one predictable branch.
// The simulation is single-threaded; metric updates are not synchronized.

#ifndef OASIS_SRC_OBS_METRICS_H_
#define OASIS_SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace oasis {
namespace obs {

class MetricsRegistry;

// Monotone event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  std::string name_;
  uint64_t value_ = 0;
};

// Last-written instantaneous value (queue depth, powered hosts, ...).
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double d) { value_ += d; }
  double value() const { return value_; }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  std::string name_;
  double value_ = 0.0;
};

// HDR-style histogram: log-linear buckets (16 sub-buckets per power of two)
// over non-positive..2^63, giving <= ~6% relative quantile error with a
// fixed, allocation-free footprint per histogram.
class Histogram {
 public:
  void Record(double value);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  // Approximate value at percentile `pct` in [0, 100], clamped to the exact
  // observed [min, max].
  double Percentile(double pct) const;

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  static constexpr int kSubBuckets = 16;  // per power of two
  static constexpr int kMinExp = -32;     // ~2.3e-10 lower resolution bound
  static constexpr int kMaxExp = 63;
  static constexpr size_t kNumBuckets =
      1 + static_cast<size_t>(kMaxExp - kMinExp + 1) * kSubBuckets;

  explicit Histogram(std::string name);
  static size_t BucketIndex(double value);
  static double BucketMidpoint(size_t index);

  std::string name_;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// One exported row of the registry (CSV line / snapshot entry).
struct MetricRow {
  std::string name;
  std::string kind;  // "counter" | "gauge" | "histogram"
  uint64_t count = 0;
  double value = 0.0;  // counter value / gauge value / histogram mean
  double min = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Finds or creates the named instrument. Returned pointers stay valid for
  // the registry's lifetime (instruments are never erased), so hot paths can
  // cache them. Requesting an existing name with a different kind returns
  // nullptr.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  // Zeroes every instrument, keeping the objects (cached pointers survive).
  void ResetValues();

  // Name-sorted export of every instrument.
  std::vector<MetricRow> Snapshot() const;
  void WriteCsv(std::ostream& out) const;
  Status WriteCsvFile(const std::string& path) const;

  size_t size() const { return instruments_.size(); }

  // Folds `other` into this registry: counters add, gauges take the other's
  // value, histograms merge bucket-wise. Same-name instruments of different
  // kinds are skipped — and counted in merge_dropped(), so a silently
  // mismatched run registry is visible (prof::Report surfaces it). The
  // experiment runner calls this serially in plan order, so the merged
  // registry matches a serial execution exactly.
  void MergeFrom(const MetricsRegistry& other);

  // As above, with every incoming instrument renamed to `prefix` + name —
  // per-shard namespacing for hierarchical runs (the datacenter runner
  // merges rack 3's registry under "dc.rack3."). An empty prefix is the
  // plain merge.
  void MergeFrom(const MetricsRegistry& other, const std::string& prefix);

  // Instruments MergeFrom skipped because the destination already held the
  // same name with a different kind (includes drops the sources had already
  // counted).
  uint64_t merge_dropped() const { return merge_dropped_; }

  // Per-registry collection switch (a single relaxed atomic).
  bool enabled() const { return enabled_inst_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_inst_.store(on, std::memory_order_relaxed); }

  // --- process-wide wiring -------------------------------------------------
  // Instrumentation sites resolve through the thread's installed RunContext
  // first (run-local registries for parallel experiments) and fall back to
  // the process-global registry — the backward-compatible default.
  static MetricsRegistry& Global();
  // Whether IfEnabled() would return a registry for this thread.
  static bool Enabled();
  // Back-compat switch for the global registry (ObsScope, tests).
  static void SetEnabled(bool on) { Global().set_enabled(on); }
  // The enabled run-local registry, else the enabled global, else nullptr.
  static MetricsRegistry* IfEnabled();

 private:
  struct Instrument {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  std::atomic<bool> enabled_inst_{false};
  std::map<std::string, Instrument> instruments_;  // sorted for stable export
  uint64_t merge_dropped_ = 0;
};

}  // namespace obs
}  // namespace oasis

#endif  // OASIS_SRC_OBS_METRICS_H_
