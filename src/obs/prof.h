// Wall-clock profiling layer.
//
// Everything else in src/obs observes the *simulated* clock; this module
// observes where the *wall clock* goes — the measurement substrate for the
// parallel runner's scaling work (ROADMAP item 1). Instrumentation sites
// wrap a phase in a ProfScope:
//
//     prof::ProfScope scope(prof::Phase::kRunSim);   // two clock reads
//
// Samples land in lock-free per-thread buffers (each thread owns its buffer
// outright; the only synchronization is a mutex on first-use registration),
// aggregate into log-linear obs::Histogram instances per phase, and roll up
// into a prof::Report: per-phase wall-clock breakdown (count / total /
// p50 / p95 / p99 / max), per-worker busy/idle/steal rows, parallel
// efficiency, the serial merge-phase share — the printed diagnosis for the
// jobs=N scaling loss — plus the trace-ring and metrics-merge drop counts so
// silently truncated observability is visible.
//
// Environment variable (parsed by ProfSession, convention of OASIS_CHECK):
//   OASIS_PROF=off|summary|timeline
//     off (default)  zero clock reads: every site gates on one relaxed
//                    atomic load and records nothing.
//     summary        phase histograms + counters; report to stderr.
//     timeline       summary plus per-worker timeline rows, exported into
//                    the Chrome trace (OASIS_TRACE) as wall-clock tracks
//                    under a second process ("oasis-wall").
//
// The profiler never touches simulation state, RNG streams, or the sim-time
// collectors' contents (timeline export appends to the trace *file* only,
// in timeline mode), so goldens and metric digests are byte-identical in
// every mode. All report output goes to stderr — the obs-tagged wall-clock
// channel excluded from golden capture (goldens pin stdout).
//
// Threading contract: recording is safe from any thread at any time;
// Collect()/Reset() must not run concurrently with recording threads (call
// them after ThreadPool::Wait() or pool teardown, as bench/perf_sweep and
// ProfSession do).

#ifndef OASIS_SRC_OBS_PROF_H_
#define OASIS_SRC_OBS_PROF_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace oasis {
namespace prof {

enum class ProfMode {
  kOff,
  kSummary,   // histograms + counters, stderr report
  kTimeline,  // summary + per-worker wall-clock tracks in the Chrome trace
};

const char* ProfModeName(ProfMode mode);

// Exit status used when OASIS_PROF names an unknown mode (matches the
// OASIS_POLICY / OASIS_CHECK strict convention).
inline constexpr int kBadModeExitCode = 2;

struct ProfConfig {
  ProfMode mode = ProfMode::kOff;

  bool Enabled() const { return mode != ProfMode::kOff; }

  // Parses OASIS_PROF ("", "0", "off" -> off; "1", "on", "summary" ->
  // summary; "2", "timeline" -> timeline). Any other value prints the
  // accepted spellings to stderr and exits with kBadModeExitCode.
  static ProfConfig FromEnv();
};

// The instrumented wall-clock phases. Timeline-grade phases (coarse, a few
// per run) also emit per-worker timeline rows in kTimeline mode; the
// per-event simulator phases are summary-only (histograms), since millions
// of rows would drown any timeline.
enum class Phase : int {
  kRunParallel = 0,  // one exp::RunParallel call, end to end (main thread)
  kRunSetup,         // run-local obs::RunContext allocation loop (serial)
  kRunSim,           // one ClusterSimulation::Run (worker or serial path)
  kRunMerge,         // serial plan-order merge of run contexts
  kRunContextCtor,   // one obs::RunContext construction
  kPoolTaskWait,     // submit -> pop latency of a pool task
  kPoolTaskRun,      // pool task execution on a worker
  kPoolIdle,         // worker parked with nothing to run
  kSimHeapPop,       // event-queue pop (heap op)        [per event]
  kSimDispatch,      // event closure execution          [per event]
  kPhaseCount,
};
inline constexpr int kNumPhases = static_cast<int>(Phase::kPhaseCount);

const char* PhaseName(Phase phase);
bool PhaseIsTimeline(Phase phase);

// Contention / allocation counters, accumulated per thread like the phases.
enum class Count : int {
  kPoolOwnPops = 0,  // tasks popped from the worker's own deque
  kPoolSteals,       // tasks stolen from a sibling's deque
  kPoolWakes,        // Submit-side condition-variable notifications
  kTasksRun,
  kRunContexts,      // obs::RunContext constructions
  kCountCount,
};
inline constexpr int kNumCounts = static_cast<int>(Count::kCountCount);

const char* CountName(Count count);

// One aggregated phase in a Report. Durations in seconds.
struct PhaseStats {
  const char* name = "";
  uint64_t count = 0;
  double total_s = 0.0;
  double mean_s = 0.0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
  double max_s = 0.0;
};

// One recording thread's roll-up (buffers with the same label merge).
struct WorkerRow {
  std::string label;
  uint64_t tasks = 0;
  uint64_t steals = 0;
  double busy_s = 0.0;  // kPoolTaskRun total
  double idle_s = 0.0;  // kPoolIdle total
};

// The wall-clock diagnosis perf_sweep embeds in BENCH_sweep.json. The
// scaling decomposition is phrased against the profiled RunParallel wall
// time: parallel_efficiency = worker busy / (jobs * wall); the serial
// fractions say where the non-parallel wall went.
struct Report {
  ProfMode mode = ProfMode::kOff;
  int jobs = 0;
  double wall_s = 0.0;  // total kRunParallel time in the collection window
  std::vector<PhaseStats> phases;          // only phases with samples
  std::array<uint64_t, kNumCounts> counts{};
  std::vector<WorkerRow> workers;          // only pool workers
  double parallel_efficiency = 0.0;
  double merge_serial_fraction = 0.0;  // kRunMerge total / wall
  double setup_fraction = 0.0;         // kRunSetup total / wall
  double worker_idle_share = 0.0;      // idle / (busy + idle) across workers
  const char* bottleneck = "";         // named top scaling loss
  uint64_t timeline_events = 0;
  uint64_t timeline_dropped = 0;
  // Observability drop accounting (satellite of the same PR): nonzero means
  // the exported trace/metrics silently lost data.
  uint64_t trace_dropped = 0;
  uint64_t metrics_merge_dropped = 0;

  bool HasSamples() const { return !phases.empty(); }

  // Human-readable table, each line tagged "[prof]" (stderr channel).
  void WriteTable(std::ostream& out) const;
  // JSON object (no trailing newline); `indent` spaces prefix every line.
  void WriteJson(std::ostream& out, int indent) const;
};

class Profiler {
 public:
  static Profiler& Instance();

  // The hot-path gate: one relaxed atomic load, zero clock reads when off.
  static bool Enabled() {
    return Instance().mode_.load(std::memory_order_relaxed) != ProfMode::kOff;
  }
  ProfMode mode() const { return mode_.load(std::memory_order_relaxed); }
  void SetMode(ProfMode mode);

  // Monotonic nanoseconds (std::chrono::steady_clock).
  static uint64_t NowNs();

  // Records one completed span into the calling thread's buffer: histogram
  // always, timeline row when the mode is kTimeline and the phase is
  // timeline-grade. No-op when the profiler is off.
  void RecordSpan(Phase phase, uint64_t start_ns, uint64_t end_ns);
  void AddCount(Count count, uint64_t n = 1);

  // Labels the calling thread's buffer ("main", "worker3", ...) for the
  // per-worker report rows and timeline track names.
  void LabelCurrentThread(const char* prefix, int index = -1);

  // Remembers the worker count of the most recent parallel region, for the
  // report's efficiency denominator.
  void NoteJobs(int jobs);

  // Rolls every thread buffer into a Report. In kTimeline mode the buffered
  // timeline rows are first exported into the *global* obs tracer (wall
  // tracks, see obs::Tracer::WallComplete) when tracing is enabled. With
  // `reset` the buffers are zeroed afterwards, opening a fresh collection
  // window (bench/perf_sweep collects once per sweep point). Must not run
  // concurrently with recording threads.
  Report Collect(bool reset);

  // Zeroes every thread buffer without reporting.
  void Reset();

 private:
  struct ThreadProf;

  Profiler();
  ThreadProf* BufferForThisThread();

  std::atomic<ProfMode> mode_{ProfMode::kOff};
  std::atomic<int> jobs_{1};
  uint64_t epoch_ns_ = 0;  // timeline timestamps are relative to this
  std::mutex mu_;          // guards buffers_ registration and Collect/Reset
  std::vector<std::unique_ptr<ThreadProf>> buffers_;
};

// RAII phase timer. Reads the clock only when the profiler is enabled at
// construction; a mode flip mid-scope still records (the sample is already
// paid for) — flips only happen at session boundaries anyway.
class ProfScope {
 public:
  explicit ProfScope(Phase phase) : phase_(phase) {
    if (Profiler::Enabled()) {
      start_ns_ = Profiler::NowNs();
      armed_ = true;
    }
  }
  ~ProfScope() {
    if (armed_) {
      Profiler::Instance().RecordSpan(phase_, start_ns_, Profiler::NowNs());
    }
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  Phase phase_;
  uint64_t start_ns_ = 0;
  bool armed_ = false;
};

// RAII: wires the profiler to OASIS_PROF for a binary's main. Declare it
// *after* ObsScope, so Finish() (destructor order) runs before the trace
// file is exported and timeline rows make it into the Chrome JSON:
//
//     oasis::check::CheckScope check_scope;   // OASIS_CHECK
//     oasis::obs::ObsScope obs_scope;         // OASIS_TRACE / OASIS_METRICS
//     oasis::prof::ProfSession prof_session;  // OASIS_PROF
//
// On destruction it collects whatever the binary has not collected itself
// and prints the report table to stderr (skipped when empty, so harnesses
// like perf_sweep that Collect(reset=true) per phase report exactly once).
class ProfSession {
 public:
  explicit ProfSession(const ProfConfig& config = ProfConfig::FromEnv());
  ~ProfSession();
  ProfSession(const ProfSession&) = delete;
  ProfSession& operator=(const ProfSession&) = delete;

  // Collects, reports to stderr, and disables the profiler. Idempotent.
  void Finish();

  const ProfConfig& config() const { return config_; }

 private:
  ProfConfig config_;
  bool finished_ = false;
};

}  // namespace prof
}  // namespace oasis

#endif  // OASIS_SRC_OBS_PROF_H_
