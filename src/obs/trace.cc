#include "src/obs/trace.h"

#include <cstdio>
#include <fstream>

#include "src/obs/run_context.h"

namespace oasis {
namespace obs {
namespace {

// Categories/names are literals under our control, but escape defensively so
// the export is valid JSON no matter what an instrumentation site passes.
void WriteJsonString(std::ostream& out, const char* s) {
  out << '"';
  for (; *s; ++s) {
    char c = *s;
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

Tracer::Tracer(size_t capacity) : capacity_(capacity ? capacity : 1) {}

void Tracer::Clear() {
  total_ = 0;
  merged_dropped_ = 0;
  ring_.clear();
  ring_.shrink_to_fit();
}

void Tracer::SetCapacity(size_t capacity) {
  capacity_ = capacity ? capacity : 1;
  Clear();
}

void Tracer::Push(const TraceEvent& event) {
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[total_ % capacity_] = event;
  }
  ++total_;
}

void Tracer::Complete(const char* category, const char* name, SimTime start, SimTime end,
                      TraceArgs args) {
  if (!enabled()) {
    return;
  }
  TraceEvent e;
  e.phase = TracePhase::kComplete;
  e.category = category;
  e.name = name;
  e.ts_us = start.micros();
  e.dur_us = (end - start).micros();
  e.args = args;
  Push(e);
}

void Tracer::Begin(const char* category, const char* name, SimTime at, TraceArgs args) {
  if (!enabled()) {
    return;
  }
  Push(TraceEvent{TracePhase::kBegin, category, name, at.micros(), 0, 0, args});
}

void Tracer::End(const char* category, const char* name, SimTime at, TraceArgs args) {
  if (!enabled()) {
    return;
  }
  Push(TraceEvent{TracePhase::kEnd, category, name, at.micros(), 0, 0, args});
}

void Tracer::Instant(const char* category, const char* name, SimTime at, TraceArgs args) {
  if (!enabled()) {
    return;
  }
  Push(TraceEvent{TracePhase::kInstant, category, name, at.micros(), 0, 0, args});
}

void Tracer::CounterValue(const char* category, const char* name, SimTime at, int64_t value) {
  if (!enabled()) {
    return;
  }
  Push(TraceEvent{TracePhase::kCounter, category, name, at.micros(), 0, value, TraceArgs{}});
}

void Tracer::WallComplete(const char* category, const char* name, int64_t track,
                          int64_t start_us, int64_t dur_us) {
  if (!enabled()) {
    return;
  }
  TraceEvent e;
  e.phase = TracePhase::kComplete;
  e.category = category;
  e.name = name;
  e.ts_us = start_us;
  e.dur_us = dur_us;
  e.args.host = track;  // renders as tid = track + 1, like host tracks
  e.pid = 2;
  Push(e);
}

std::vector<TraceEvent> Tracer::Events() const {
  std::vector<TraceEvent> out;
  size_t n = size();
  out.reserve(n);
  // Oldest retained event first.
  uint64_t first = total_ - n;
  for (uint64_t i = first; i < total_; ++i) {
    out.push_back(ring_[i % capacity_]);
  }
  return out;
}

void Tracer::WriteEventJson(std::ostream& out, const TraceEvent& event) const {
  // Spans of a host render on that host's track; everything else shares
  // track 0. One process ("oasis-sim") holds all tracks.
  int64_t tid = event.args.host >= 0 ? event.args.host + 1 : 0;
  out << "{\"ph\":\"" << static_cast<char>(event.phase) << "\",\"cat\":";
  WriteJsonString(out, event.category);
  out << ",\"name\":";
  WriteJsonString(out, event.name);
  out << ",\"pid\":" << event.pid << ",\"tid\":" << tid << ",\"ts\":" << event.ts_us;
  if (event.phase == TracePhase::kComplete) {
    out << ",\"dur\":" << event.dur_us;
  }
  if (event.phase == TracePhase::kInstant) {
    out << ",\"s\":\"t\"";  // thread-scoped instant
  }
  out << ",\"args\":{";
  bool first = true;
  auto arg = [&](const char* key, int64_t value) {
    if (!first) {
      out << ',';
    }
    first = false;
    out << '"' << key << "\":" << value;
  };
  if (event.phase == TracePhase::kCounter) {
    arg("value", event.value);
  }
  if (event.args.host >= 0) {
    // On the wall-clock process the host slot carries the worker track.
    arg(event.pid == 2 ? "track" : "host", event.args.host);
  }
  if (event.args.vm >= 0) {
    arg("vm", event.args.vm);
  }
  if (event.args.bytes >= 0) {
    arg("bytes", event.args.bytes);
  }
  out << "}}";
}

void Tracer::ExportChromeJson(std::ostream& out) const {
  std::vector<TraceEvent> events = Events();
  out << "{\"traceEvents\":[\n";
  out << "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":"
         "\"oasis-sim\"}}";
  for (const TraceEvent& event : events) {
    if (event.pid == 2) {
      // Wall-clock profiler tracks present: name their process once.
      out << ",\n{\"ph\":\"M\",\"pid\":2,\"name\":\"process_name\",\"args\":{\"name\":"
             "\"oasis-wall\"}}";
      break;
    }
  }
  for (const TraceEvent& event : events) {
    out << ",\n";
    WriteEventJson(out, event);
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void Tracer::ExportJsonl(std::ostream& out) const {
  for (const TraceEvent& event : Events()) {
    WriteEventJson(out, event);
    out << '\n';
  }
}

Status Tracer::ExportChromeJsonFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument("cannot open trace file: " + path);
  }
  ExportChromeJson(out);
  return Status::Ok();
}

Status Tracer::ExportJsonlFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument("cannot open trace file: " + path);
  }
  ExportJsonl(out);
  return Status::Ok();
}

void Tracer::MergeFrom(const Tracer& other) {
  merged_dropped_ += other.dropped();
  for (const TraceEvent& event : other.Events()) {
    Push(event);
  }
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // never destroyed
  return *tracer;
}

Tracer* Tracer::IfEnabled() {
  if (RunContext* context = RunContext::Current()) {
    Tracer& local = context->tracer();
    return local.enabled() ? &local : nullptr;
  }
  Tracer& global = Global();
  return global.enabled() ? &global : nullptr;
}

}  // namespace obs
}  // namespace oasis
