// Run-local observability: one tracer + metrics registry per simulation run.
//
// The process-global Tracer/MetricsRegistry singletons are single-writer by
// design — fine for one simulation per process, a data race the moment the
// experiment runner (src/exp) executes independent runs on worker threads.
// A RunContext owns a private Tracer and MetricsRegistry; installing it
// (RAII, per thread) reroutes every instrumentation site that goes through
// Tracer::IfEnabled() / MetricsRegistry::IfEnabled() to the run-local
// collectors, with zero changes at the sites themselves.
//
// When no context is installed (every pre-existing binary, and the
// runner's jobs=1 legacy path) the globals are used exactly as before —
// the global remains the backward-compatible default.
//
// Ownership rules (see DESIGN.md § Performance & parallel experiments):
//   * the RunContext must outlive the run it is installed for;
//   * at most one run per thread, one thread per run — contexts are not
//     shared across threads;
//   * after the run, the owner merges the collected data into the globals
//     in a deterministic (plan) order via MergeFrom, so exported trace and
//     metrics files are byte-identical to a serial execution.

#ifndef OASIS_SRC_OBS_RUN_CONTEXT_H_
#define OASIS_SRC_OBS_RUN_CONTEXT_H_

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace oasis {
namespace obs {

class RunContext {
 public:
  // Collection in the new context starts disabled; MirrorGlobalEnables()
  // copies the process-wide enable switches so a run records exactly what a
  // serial execution would have recorded.
  explicit RunContext(size_t trace_capacity = Tracer::kDefaultCapacity);
  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  Tracer& tracer() { return tracer_; }
  MetricsRegistry& metrics() { return metrics_; }

  // Enables run-local tracing/metrics iff the corresponding global collector
  // is enabled right now.
  void MirrorGlobalEnables();

  // Appends this run's trace events and folds its metrics into the global
  // collectors (no-op for a collector whose global twin is disabled). Called
  // serially in plan order by the experiment runner.
  void MergeIntoGlobals();

  // As above, with this run's metrics merged under `metrics_prefix` (e.g.
  // "dc.rack3.") — per-shard namespacing for hierarchical runs. Trace
  // events append unprefixed either way: they already carry sim-time and
  // per-run ordering.
  void MergeIntoGlobals(const std::string& metrics_prefix);

  // The context installed on this thread, nullptr when instrumentation goes
  // to the globals.
  static RunContext* Current();

  // RAII install/uninstall on the current thread; nests (restores the
  // previously installed context).
  class Scope {
   public:
    explicit Scope(RunContext* context);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    RunContext* previous_;
  };

 private:
  Tracer tracer_;
  MetricsRegistry metrics_;
};

}  // namespace obs
}  // namespace oasis

#endif  // OASIS_SRC_OBS_RUN_CONTEXT_H_
