#include "src/obs/prof.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>

#include "src/obs/trace.h"

namespace oasis {
namespace prof {
namespace {

struct PhaseInfo {
  const char* name;
  bool timeline;
};

// Order must match enum Phase.
constexpr PhaseInfo kPhaseInfo[kNumPhases] = {
    {"exp.run_parallel", true},    {"exp.run_setup", true},
    {"exp.run_sim", true},         {"exp.merge", true},
    {"obs.run_context_ctor", false}, {"pool.task_wait", false},
    {"pool.task_run", true},       {"pool.idle", true},
    {"sim.heap_pop", false},       {"sim.dispatch", false},
};

// Order must match enum Count.
constexpr const char* kCountName[kNumCounts] = {
    "pool.own_pops", "pool.steals", "pool.wakes", "pool.tasks", "obs.run_contexts",
};

// Per-thread timeline rows are bounded so a runaway phase cannot grow
// memory without bound; drops are counted and reported.
constexpr size_t kTimelineCap = 1 << 15;

}  // namespace

const char* ProfModeName(ProfMode mode) {
  switch (mode) {
    case ProfMode::kOff:
      return "off";
    case ProfMode::kSummary:
      return "summary";
    case ProfMode::kTimeline:
      return "timeline";
  }
  return "?";
}

const char* PhaseName(Phase phase) { return kPhaseInfo[static_cast<int>(phase)].name; }

bool PhaseIsTimeline(Phase phase) { return kPhaseInfo[static_cast<int>(phase)].timeline; }

const char* CountName(Count count) { return kCountName[static_cast<int>(count)]; }

ProfConfig ProfConfig::FromEnv() {
  ProfConfig config;
  const char* env = std::getenv("OASIS_PROF");
  if (env == nullptr || *env == '\0') {
    return config;
  }
  std::string value(env);
  if (value == "off" || value == "0") {
    config.mode = ProfMode::kOff;
  } else if (value == "summary" || value == "on" || value == "1") {
    config.mode = ProfMode::kSummary;
  } else if (value == "timeline" || value == "2") {
    config.mode = ProfMode::kTimeline;
  } else {
    std::fprintf(stderr,
                 "[prof] unknown OASIS_PROF mode \"%s\" (accepted: off|summary|timeline)\n",
                 env);
    std::exit(kBadModeExitCode);
  }
  return config;
}

// --- Profiler ----------------------------------------------------------------

struct Profiler::ThreadProf {
  explicit ThreadProf(int track_index) : track(track_index) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "thread-%d", track_index);
    label = buf;
    for (int p = 0; p < kNumPhases; ++p) {
      hist[p] = registry.histogram(kPhaseInfo[p].name);
    }
  }

  struct TimelineRow {
    Phase phase;
    uint64_t start_ns;
    uint64_t end_ns;
  };

  int track;
  std::string label;  // written by the owner thread only
  obs::MetricsRegistry registry;
  std::array<obs::Histogram*, kNumPhases> hist{};
  std::array<uint64_t, kNumCounts> counts{};
  std::vector<TimelineRow> timeline;
  uint64_t timeline_dropped = 0;

  void ResetValues() {
    registry.ResetValues();
    counts.fill(0);
    timeline.clear();
    timeline_dropped = 0;
  }
};

Profiler::Profiler() : epoch_ns_(NowNs()) {}

Profiler& Profiler::Instance() {
  static Profiler* profiler = new Profiler();  // never destroyed
  return *profiler;
}

uint64_t Profiler::NowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

void Profiler::SetMode(ProfMode mode) { mode_.store(mode, std::memory_order_relaxed); }

Profiler::ThreadProf* Profiler::BufferForThisThread() {
  // Cached per thread: after first-use registration (the only lock), every
  // record is a plain write into a buffer this thread owns outright.
  static thread_local ThreadProf* t_prof = nullptr;
  if (t_prof == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    buffers_.push_back(std::make_unique<ThreadProf>(static_cast<int>(buffers_.size())));
    t_prof = buffers_.back().get();
  }
  return t_prof;
}

void Profiler::RecordSpan(Phase phase, uint64_t start_ns, uint64_t end_ns) {
  ProfMode mode = mode_.load(std::memory_order_relaxed);
  if (mode == ProfMode::kOff) {
    return;
  }
  ThreadProf* buf = BufferForThisThread();
  uint64_t dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  buf->hist[static_cast<int>(phase)]->Record(static_cast<double>(dur_ns) * 1e-9);
  if (mode == ProfMode::kTimeline && PhaseIsTimeline(phase)) {
    if (buf->timeline.size() < kTimelineCap) {
      buf->timeline.push_back({phase, start_ns, end_ns});
    } else {
      ++buf->timeline_dropped;
    }
  }
}

void Profiler::AddCount(Count count, uint64_t n) {
  if (mode_.load(std::memory_order_relaxed) == ProfMode::kOff) {
    return;
  }
  BufferForThisThread()->counts[static_cast<int>(count)] += n;
}

void Profiler::LabelCurrentThread(const char* prefix, int index) {
  if (mode_.load(std::memory_order_relaxed) == ProfMode::kOff) {
    return;
  }
  ThreadProf* buf = BufferForThisThread();
  if (index >= 0) {
    char label[48];
    std::snprintf(label, sizeof(label), "%s%d", prefix, index);
    buf->label = label;
  } else {
    buf->label = prefix;
  }
}

void Profiler::NoteJobs(int jobs) { jobs_.store(jobs, std::memory_order_relaxed); }

void Profiler::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& buf : buffers_) {
    buf->ResetValues();
  }
}

Report Profiler::Collect(bool reset) {
  std::lock_guard<std::mutex> lock(mu_);
  Report report;
  report.mode = mode_.load(std::memory_order_relaxed);
  report.jobs = jobs_.load(std::memory_order_relaxed);

  // Drop accounting is read before the timeline export below, so the
  // report never blames the profiler's own wall events for evictions.
  obs::Tracer& tracer = obs::Tracer::Global();
  report.trace_dropped = tracer.dropped();
  report.metrics_merge_dropped = obs::MetricsRegistry::Global().merge_dropped();

  // Merge every thread's histograms bucket-wise, then summarize the phases
  // that actually ran.
  obs::MetricsRegistry merged;
  for (const auto& buf : buffers_) {
    merged.MergeFrom(buf->registry);
  }
  std::array<double, kNumPhases> totals{};
  for (int p = 0; p < kNumPhases; ++p) {
    const obs::Histogram* h = merged.histogram(kPhaseInfo[p].name);
    if (h == nullptr || h->count() == 0) {
      continue;
    }
    totals[p] = h->sum();
    PhaseStats stats;
    stats.name = kPhaseInfo[p].name;
    stats.count = h->count();
    stats.total_s = h->sum();
    stats.mean_s = h->mean();
    stats.p50_s = h->Percentile(50.0);
    stats.p95_s = h->Percentile(95.0);
    stats.p99_s = h->Percentile(99.0);
    stats.max_s = h->max();
    report.phases.push_back(stats);
  }
  std::sort(report.phases.begin(), report.phases.end(),
            [](const PhaseStats& a, const PhaseStats& b) { return a.total_s > b.total_s; });

  for (const auto& buf : buffers_) {
    for (int c = 0; c < kNumCounts; ++c) {
      report.counts[c] += buf->counts[c];
    }
    report.timeline_events += buf->timeline.size();
    report.timeline_dropped += buf->timeline_dropped;
  }

  // Per-worker rows: every buffer that executed pool work, merged by label
  // (sweep steps recreate pools, so "worker0" may span several buffers).
  std::map<std::string, WorkerRow> by_label;
  for (const auto& buf : buffers_) {
    const obs::Histogram* busy = buf->hist[static_cast<int>(Phase::kPoolTaskRun)];
    const obs::Histogram* idle = buf->hist[static_cast<int>(Phase::kPoolIdle)];
    if (busy->count() == 0 && idle->count() == 0) {
      continue;
    }
    WorkerRow& row = by_label[buf->label];
    row.label = buf->label;
    row.tasks += buf->counts[static_cast<int>(Count::kTasksRun)];
    row.steals += buf->counts[static_cast<int>(Count::kPoolSteals)];
    row.busy_s += busy->sum();
    row.idle_s += idle->sum();
  }
  for (auto& [label, row] : by_label) {
    report.workers.push_back(row);
  }

  // Scaling decomposition against the profiled RunParallel wall time. The
  // serial path records no pool phases, so "busy" falls back to the
  // simulation time itself and efficiency reads as sim-share of wall.
  report.wall_s = totals[static_cast<int>(Phase::kRunParallel)];
  double busy = totals[static_cast<int>(Phase::kPoolTaskRun)];
  if (busy == 0.0) {
    busy = totals[static_cast<int>(Phase::kRunSim)];
  }
  double idle = totals[static_cast<int>(Phase::kPoolIdle)];
  if (report.wall_s > 0.0 && report.jobs > 0) {
    report.parallel_efficiency = busy / (report.wall_s * report.jobs);
    report.merge_serial_fraction = totals[static_cast<int>(Phase::kRunMerge)] / report.wall_s;
    report.setup_fraction = totals[static_cast<int>(Phase::kRunSetup)] / report.wall_s;
  }
  if (busy + idle > 0.0) {
    report.worker_idle_share = idle / (busy + idle);
  }
  if (report.wall_s <= 0.0) {
    report.bottleneck = "";
  } else if (report.parallel_efficiency >= 0.9) {
    report.bottleneck = "none (near-linear scaling)";
  } else {
    report.bottleneck = "worker idle (work starvation / imbalance)";
    double top = report.worker_idle_share;
    if (report.merge_serial_fraction > top) {
      top = report.merge_serial_fraction;
      report.bottleneck = "serial merge phase";
    }
    if (report.setup_fraction > top) {
      report.bottleneck = "serial setup (RunContext construction)";
    }
  }

  // Timeline rows become wall-clock tracks in the Chrome trace: one track
  // per recording thread under the "oasis-wall" process, timestamps in
  // microseconds since the profiler epoch.
  if (report.mode == ProfMode::kTimeline && tracer.enabled()) {
    for (const auto& buf : buffers_) {
      for (const ThreadProf::TimelineRow& row : buf->timeline) {
        tracer.WallComplete("prof", PhaseName(row.phase), buf->track,
                            static_cast<int64_t>((row.start_ns - epoch_ns_) / 1000),
                            static_cast<int64_t>((row.end_ns - row.start_ns) / 1000));
      }
    }
  }

  if (reset) {
    for (auto& buf : buffers_) {
      buf->ResetValues();
    }
  }
  return report;
}

// --- Report ------------------------------------------------------------------

void Report::WriteTable(std::ostream& out) const {
  char line[256];
  std::snprintf(line, sizeof(line),
                "[prof] wall-clock profile: mode=%s jobs=%d wall=%.3fs\n",
                ProfModeName(mode), jobs, wall_s);
  out << line;
  std::snprintf(line, sizeof(line), "[prof]   %-22s %10s %10s %7s %11s %11s %11s %11s\n",
                "phase", "count", "total_s", "share", "p50_us", "p95_us", "p99_us",
                "max_us");
  out << line;
  for (const PhaseStats& p : phases) {
    std::snprintf(line, sizeof(line),
                  "[prof]   %-22s %10llu %10.3f %6.1f%% %11.1f %11.1f %11.1f %11.1f\n",
                  p.name, static_cast<unsigned long long>(p.count), p.total_s,
                  wall_s > 0.0 ? 100.0 * p.total_s / wall_s : 0.0, p.p50_s * 1e6,
                  p.p95_s * 1e6, p.p99_s * 1e6, p.max_s * 1e6);
    out << line;
  }
  for (const WorkerRow& w : workers) {
    std::snprintf(line, sizeof(line),
                  "[prof]   %-10s tasks=%-5llu steals=%-4llu busy=%8.3fs idle=%8.3fs "
                  "idle_share=%5.1f%%\n",
                  w.label.c_str(), static_cast<unsigned long long>(w.tasks),
                  static_cast<unsigned long long>(w.steals), w.busy_s, w.idle_s,
                  w.busy_s + w.idle_s > 0.0 ? 100.0 * w.idle_s / (w.busy_s + w.idle_s) : 0.0);
    out << line;
  }
  bool counts_present = false;
  for (int c = 0; c < kNumCounts; ++c) {
    counts_present = counts_present || counts[c] != 0;
  }
  if (counts_present) {
    out << "[prof]   counters:";
    for (int c = 0; c < kNumCounts; ++c) {
      if (counts[c] != 0) {
        std::snprintf(line, sizeof(line), " %s=%llu", kCountName[c],
                      static_cast<unsigned long long>(counts[c]));
        out << line;
      }
    }
    out << '\n';
  }
  std::snprintf(line, sizeof(line),
                "[prof] parallel efficiency %.2f | merge-serial fraction %.1f%% | setup "
                "fraction %.1f%% | worker idle share %.1f%%\n",
                parallel_efficiency, merge_serial_fraction * 100.0, setup_fraction * 100.0,
                worker_idle_share * 100.0);
  out << line;
  if (bottleneck[0] != '\0') {
    out << "[prof] top scaling bottleneck: " << bottleneck << '\n';
  }
  if (timeline_dropped != 0) {
    std::snprintf(line, sizeof(line),
                  "[prof] WARNING: timeline dropped %llu rows (per-thread cap)\n",
                  static_cast<unsigned long long>(timeline_dropped));
    out << line;
  }
  if (trace_dropped != 0) {
    std::snprintf(line, sizeof(line),
                  "[prof] WARNING: trace ring dropped %llu events — the exported trace is "
                  "truncated (raise OASIS_TRACE_CAPACITY)\n",
                  static_cast<unsigned long long>(trace_dropped));
    out << line;
  }
  if (metrics_merge_dropped != 0) {
    std::snprintf(line, sizeof(line),
                  "[prof] WARNING: metrics merge dropped %llu instruments (kind mismatch "
                  "across run registries)\n",
                  static_cast<unsigned long long>(metrics_merge_dropped));
    out << line;
  }
}

void Report::WriteJson(std::ostream& out, int indent) const {
  std::string pad(static_cast<size_t>(indent), ' ');
  out << pad << "{\n";
  out << pad << "  \"mode\": \"" << ProfModeName(mode) << "\",\n";
  out << pad << "  \"jobs\": " << jobs << ",\n";
  out << pad << "  \"wall_s\": " << wall_s << ",\n";
  out << pad << "  \"parallel_efficiency\": " << parallel_efficiency << ",\n";
  out << pad << "  \"merge_serial_fraction\": " << merge_serial_fraction << ",\n";
  out << pad << "  \"setup_fraction\": " << setup_fraction << ",\n";
  out << pad << "  \"worker_idle_share\": " << worker_idle_share << ",\n";
  out << pad << "  \"bottleneck\": \"" << bottleneck << "\",\n";
  out << pad << "  \"timeline_events\": " << timeline_events << ",\n";
  out << pad << "  \"timeline_dropped\": " << timeline_dropped << ",\n";
  out << pad << "  \"trace_dropped\": " << trace_dropped << ",\n";
  out << pad << "  \"metrics_merge_dropped\": " << metrics_merge_dropped << ",\n";
  out << pad << "  \"counters\": {";
  for (int c = 0; c < kNumCounts; ++c) {
    out << (c > 0 ? ", " : "") << '"' << kCountName[c] << "\": " << counts[c];
  }
  out << "},\n";
  out << pad << "  \"phases\": [";
  for (size_t i = 0; i < phases.size(); ++i) {
    const PhaseStats& p = phases[i];
    out << (i > 0 ? "," : "") << "\n"
        << pad << "    {\"name\": \"" << p.name << "\", \"count\": " << p.count
        << ", \"total_s\": " << p.total_s << ", \"mean_s\": " << p.mean_s
        << ", \"p50_s\": " << p.p50_s << ", \"p95_s\": " << p.p95_s
        << ", \"p99_s\": " << p.p99_s << ", \"max_s\": " << p.max_s << "}";
  }
  out << (phases.empty() ? "]" : "\n" + pad + "  ]") << ",\n";
  out << pad << "  \"workers\": [";
  for (size_t i = 0; i < workers.size(); ++i) {
    const WorkerRow& w = workers[i];
    out << (i > 0 ? "," : "") << "\n"
        << pad << "    {\"label\": \"" << w.label << "\", \"tasks\": " << w.tasks
        << ", \"steals\": " << w.steals << ", \"busy_s\": " << w.busy_s
        << ", \"idle_s\": " << w.idle_s << "}";
  }
  out << (workers.empty() ? "]" : "\n" + pad + "  ]") << "\n";
  out << pad << "}";
}

// --- ProfSession -------------------------------------------------------------

ProfSession::ProfSession(const ProfConfig& config) : config_(config) {
  Profiler& profiler = Profiler::Instance();
  profiler.SetMode(config_.mode);
  if (config_.Enabled()) {
    profiler.Reset();
    profiler.LabelCurrentThread("main");
  }
}

void ProfSession::Finish() {
  if (finished_) {
    return;
  }
  finished_ = true;
  if (!config_.Enabled()) {
    return;
  }
  Profiler& profiler = Profiler::Instance();
  Report report = profiler.Collect(/*reset=*/true);
  if (report.HasSamples()) {
    report.WriteTable(std::cerr);
  }
  profiler.SetMode(ProfMode::kOff);
}

ProfSession::~ProfSession() { Finish(); }

}  // namespace prof
}  // namespace oasis
