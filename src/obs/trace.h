// Sim-time span tracer.
//
// Components record begin/end/complete/instant/counter events stamped with
// the simulated clock into a bounded ring buffer (oldest events are dropped
// under pressure, never the newest). The buffer exports as Chrome
// `trace_event` JSON — loadable in Perfetto / chrome://tracing, with each
// host rendered as its own track — or as JSONL for ad-hoc scripting.
//
// Category and name strings must be string literals (or otherwise outlive
// the tracer): events store the pointers, not copies, so recording stays
// allocation-free. Instrumentation sites gate on Tracer::IfEnabled(), a
// single relaxed atomic load, so disabled tracing costs one branch.
// The simulation is single-threaded; the tracer is not synchronized.

#ifndef OASIS_SRC_OBS_TRACE_H_
#define OASIS_SRC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"

namespace oasis {
namespace obs {

// Optional structured payload carried by an event. -1 means "not set".
struct TraceArgs {
  int64_t host = -1;
  int64_t vm = -1;
  int64_t bytes = -1;
};

enum class TracePhase : char {
  kComplete = 'X',  // span with explicit duration
  kBegin = 'B',     // nesting span open...
  kEnd = 'E',       // ...and close
  kInstant = 'i',
  kCounter = 'C',
};

struct TraceEvent {
  TracePhase phase = TracePhase::kInstant;
  const char* category = "";
  const char* name = "";
  int64_t ts_us = 0;   // simulated microseconds (wall microseconds on pid 2)
  int64_t dur_us = 0;  // kComplete only
  int64_t value = 0;   // kCounter only
  TraceArgs args;
  // Chrome-trace process id: 1 = "oasis-sim" (sim-time tracks, the
  // default), 2 = "oasis-wall" (wall-clock profiler tracks; see
  // WallComplete). The exporter emits process metadata for pid 2 only when
  // such events exist, so sim-only traces are byte-identical to before.
  int32_t pid = 1;
};

class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;

  explicit Tracer(size_t capacity = kDefaultCapacity);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  // Drops all recorded events; optionally resizes the ring.
  void Clear();
  void SetCapacity(size_t capacity);
  size_t capacity() const { return capacity_; }

  // --- recording (no-ops while disabled) ----------------------------------
  // A span known in full when recorded (most sim spans: both endpoints are
  // computed up front).
  void Complete(const char* category, const char* name, SimTime start, SimTime end,
                TraceArgs args = {});
  // Nesting open/close pair; nests per track by timestamp order.
  void Begin(const char* category, const char* name, SimTime at, TraceArgs args = {});
  void End(const char* category, const char* name, SimTime at, TraceArgs args = {});
  void Instant(const char* category, const char* name, SimTime at, TraceArgs args = {});
  // A sampled counter track (e.g. event-queue depth over sim time).
  void CounterValue(const char* category, const char* name, SimTime at, int64_t value);
  // A *wall-clock* span on the "oasis-wall" process (pid 2), track `track`
  // (one per recording thread). Timestamps are wall microseconds relative
  // to the profiler epoch, not sim time. Used by prof timeline export.
  void WallComplete(const char* category, const char* name, int64_t track,
                    int64_t start_us, int64_t dur_us);

  // --- inspection ----------------------------------------------------------
  size_t size() const { return total_ < capacity_ ? static_cast<size_t>(total_) : capacity_; }
  uint64_t total_recorded() const { return total_ + merged_dropped_; }
  uint64_t dropped() const { return total_ - size() + merged_dropped_; }
  // Oldest-first copy of the retained events.
  std::vector<TraceEvent> Events() const;

  // --- export --------------------------------------------------------------
  // Chrome trace_event "JSON Object Format": {"traceEvents": [...]}.
  void ExportChromeJson(std::ostream& out) const;
  Status ExportChromeJsonFile(const std::string& path) const;
  // One JSON object per line.
  void ExportJsonl(std::ostream& out) const;
  Status ExportJsonlFile(const std::string& path) const;

  // Appends `other`'s retained events (oldest first) to this ring and folds
  // `other`'s drop count into this tracer's, so both the retained suffix and
  // the dropped/total counters match a serial execution when the experiment
  // runner merges run-local tracers in plan order.
  void MergeFrom(const Tracer& other);

  // --- process-wide wiring -------------------------------------------------
  static Tracer& Global();
  // The enabled tracer for this thread, nullptr otherwise — the hot-path
  // gate. A thread running under an installed obs::RunContext resolves to
  // the run-local tracer; everything else gets the global:
  //   if (obs::Tracer* t = obs::Tracer::IfEnabled()) t->Complete(...);
  static Tracer* IfEnabled();

 private:
  void Push(const TraceEvent& event);
  void WriteEventJson(std::ostream& out, const TraceEvent& event) const;

  std::atomic<bool> enabled_{false};
  size_t capacity_;
  std::vector<TraceEvent> ring_;  // allocated on first use
  uint64_t total_ = 0;            // events pushed here; ring_[total_ % capacity_] is next
  uint64_t merged_dropped_ = 0;   // events a MergeFrom source had already dropped
};

}  // namespace obs
}  // namespace oasis

#endif  // OASIS_SRC_OBS_TRACE_H_
