// Sharded datacenter hierarchy: pods -> racks -> hosts.
//
// A DatacenterTopology turns one DatacenterConfig into a flat, pod-major
// list of RackSpecs. Every rack is a self-contained, paper-shaped cluster (a
// PaperCluster-style SimulationConfig) with its own seed-derived trace
// population, so rack simulations are mutually independent by construction:
// no shared RNG stream, no shared state, no cross-rack event. That
// independence is what lets the ShardRunner (src/dc/runner.h) execute racks
// as parallel tasks with bit-identical results at any OASIS_JOBS, and what
// keeps the GlobalCoordinator (src/dc/coordinator.h) an overlay tier that
// only ever acts *between* racks, never inside one.
//
// Determinism contract (DESIGN.md, "Datacenter hierarchy"):
//   * rack seeds derive from (config.seed, rack index) via a SplitMix64
//     finalizer — stable across pod shape, rack-count overrides and
//     execution order;
//   * topology order is pod-major ascending rack index; every consumer that
//     folds per-rack data (ledger, coordinator, obs merge) walks that order.
//
// Environment:
//   OASIS_DC_RACKS=<n>   overrides the total rack count (smoke grids, CI).
//                        Anything but a positive integer exits with status 2,
//                        matching the OASIS_CHECK/OASIS_PROF/OASIS_POLICY
//                        unknown-value convention.

#ifndef OASIS_SRC_DC_TOPOLOGY_H_
#define OASIS_SRC_DC_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/cluster/strategy.h"
#include "src/core/oasis.h"
#include "src/dc/coordinator.h"

namespace oasis {
namespace dc {

// The per-rack cluster shape every rack in the datacenter shares. Racks
// differ only in their seed (and therefore their simulated user population
// and fault schedule), exactly like repeated runs of one experiment config.
struct RackShape {
  int home_hosts = 30;
  int consolidation_hosts = 4;
  // Routed through ClusterConfig::SetVmsPerHome, so host capacity (and,
  // capacity-proportionally, host power) scales with density.
  int vms_per_home = 30;
  ConsolidationPolicy policy = ConsolidationPolicy::kFullToPartial;
  std::string strategy_name = kDefaultStrategyName;  // the rack-local planner
  DayKind day = DayKind::kWeekday;
  // Per-rack deterministic fault injection; the plan is sampled from the
  // rack seed, so every rack gets its own fault schedule.
  FaultConfig fault;

  int users() const { return home_hosts * vms_per_home; }
  int hosts() const { return home_hosts + consolidation_hosts; }
};

struct DatacenterConfig {
  // total_racks racks packed pod-major into pods of racks_per_pod (the last
  // pod may be partial).
  int total_racks = 256;
  int racks_per_pod = 32;
  RackShape rack;
  // Heterogeneous fleets: when non-empty, pod p's racks are built entirely
  // from host generation pod_generations[p % size()] (names from the
  // src/power catalog — datacenters buy hardware by the pod). Empty keeps
  // every rack on the uniform config.host_power template, byte-identical to
  // the pre-fleet topology. A rack's generation depends only on its own
  // index and racks_per_pod — never on total_racks — so small
  // OASIS_DC_RACKS grids stay exact prefixes of the full datacenter, seeds
  // and hardware alike.
  std::vector<std::string> pod_generations;
  uint64_t seed = 20160418;
  CoordinatorConfig coordinator;

  int NumPods() const {
    return racks_per_pod > 0 ? (total_racks + racks_per_pod - 1) / racks_per_pod : 0;
  }
  int TotalHosts() const { return total_racks * rack.hosts(); }
  // One VDI user per VM.
  long long TotalUsers() const {
    return static_cast<long long>(total_racks) * rack.users();
  }

  Status Validate() const;
};

// One rack, fully resolved: its position in the hierarchy and the exact
// SimulationConfig its shard executes.
struct RackSpec {
  int rack = 0;  // global index == position in topology order
  int pod = 0;
  SimulationConfig sim;
};

class DatacenterTopology {
 public:
  // Validates `config` and expands it into pod-major RackSpecs.
  static StatusOr<DatacenterTopology> Build(const DatacenterConfig& config);

  // SplitMix64 finalizer over (base, rack): well-mixed, stable, and
  // independent of how many racks exist — rack 7 of a 8-rack smoke grid
  // simulates the identical day as rack 7 of the 256-rack datacenter.
  static uint64_t RackSeed(uint64_t base, int rack);

  const DatacenterConfig& config() const { return config_; }
  const std::vector<RackSpec>& racks() const { return racks_; }

 private:
  DatacenterConfig config_;
  std::vector<RackSpec> racks_;
};

// Applies OASIS_DC_RACKS (and OASIS_SEED via the caller's usual
// obs::ApplySeedOverride) to `config`. A value that is not a positive
// integer prints the expected form to stderr and exits with status 2.
void ApplyDatacenterEnvOverrides(DatacenterConfig* config);

}  // namespace dc
}  // namespace oasis

#endif  // OASIS_SRC_DC_TOPOLOGY_H_
