#include "src/dc/coordinator.h"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "src/common/rng.h"
#include "src/dc/runner.h"
#include "src/dc/topology.h"
#include "src/power/host_profile.h"
#include "src/power/power_model.h"

namespace oasis {
namespace dc {
namespace {

// Separates the coordinator's cap-window streams from the rack simulation
// seeds derived from the same datacenter seed (both go through RackSeed).
constexpr uint64_t kCapStreamSalt = 0x9D39247E33776D41ull;

// The demand signal the drain tier reads per rack-interval: the population
// parked on consolidation hosts (partials plus idle-full guests).
int ParkedVms(const IntervalSnapshot& s) {
  return s.partial_vms + s.full_at_consolidation_vms;
}

}  // namespace

const char* CoordinatorModeName(CoordinatorMode mode) {
  switch (mode) {
    case CoordinatorMode::kOff:
      return "per-rack-local";
    case CoordinatorMode::kGlobalGreedy:
      return "global-greedy";
    case CoordinatorMode::kAssisted:
      return "coordinator-assisted";
  }
  return "unknown";
}

Status CoordinatorConfig::Validate() const {
  if (near_empty_max_parked < 0) {
    return Status::InvalidArgument("near_empty_max_parked must be >= 0");
  }
  if (min_drain_intervals < 1) {
    return Status::InvalidArgument("min_drain_intervals must be >= 1");
  }
  if (cons_host_vm_capacity < 0) {
    return Status::InvalidArgument("cons_host_vm_capacity must be >= 0 (0 = auto)");
  }
  if (sponsor_fill_ratio <= 0.0 || sponsor_fill_ratio > 1.0) {
    return Status::InvalidArgument("sponsor_fill_ratio must be in (0, 1]");
  }
  if (cap_events_per_rack_day < 0.0) {
    return Status::InvalidArgument("cap_events_per_rack_day must be >= 0");
  }
  if (cap_events_per_rack_day > 0.0 && rack_power_cap_watts <= 0.0) {
    return Status::InvalidArgument("cap events need a positive rack_power_cap_watts");
  }
  return Status::Ok();
}

CoordinatorStats GlobalCoordinator::Coordinate(const DatacenterRun& run) const {
  CoordinatorStats stats;
  if (config_.mode == CoordinatorMode::kOff || run.racks.empty()) {
    return stats;
  }

  // Canonical view: racks sorted by rack index, whatever order the result
  // array arrived in. Every loop below walks this view, which is what makes
  // the sweep a pure function of the *set* of rack results — the
  // rack-permutation invariance the metamorphic suite pins.
  const size_t num_racks = run.racks.size();
  std::vector<const RackResult*> racks(num_racks);
  for (size_t i = 0; i < num_racks; ++i) {
    racks[i] = &run.racks[i];
  }
  std::sort(racks.begin(), racks.end(),
            [](const RackResult* a, const RackResult* b) { return a->rack < b->rack; });

  size_t intervals = racks[0]->metrics.timeline.size();
  for (const RackResult* rack : racks) {
    intervals = std::min(intervals, rack->metrics.timeline.size());
  }
  if (intervals == 0) {
    return stats;
  }

  const std::vector<IntervalSnapshot>& t0 = racks[0]->metrics.timeline;
  const double interval_s =
      intervals >= 2 ? (t0[1].time - t0[0].time).seconds() : 300.0;

  // An avoided powered consolidation host sleeps in S3 instead of idling,
  // and its guests' marginal per-VM draw follows them to the sponsor — so
  // the delta per avoided host-interval is idle-vs-S3, priced at each
  // rack's own generation (pod_generations). A rack built from an
  // S3-incapable generation cannot park its consolidation tier at all, so
  // it earns no credit and never starts a drain. With pod_generations
  // empty every rack uses the Table 1 template, exactly as before.
  const HostPowerProfile default_power;
  const Watts default_s3_delta = default_power.idle_watts - default_power.sleep_watts;
  std::vector<Watts> s3_delta_of(num_racks, default_s3_delta);
  std::vector<char> s3_capable_of(num_racks, 1);
  if (!run.config.pod_generations.empty()) {
    for (size_t i = 0; i < num_racks; ++i) {
      const std::string& generation =
          run.config.pod_generations[static_cast<size_t>(racks[i]->pod) %
                                     run.config.pod_generations.size()];
      const HostProfile* profile = FindHostGeneration(generation);
      if (profile == nullptr) {
        continue;  // Validate() rejects unknown names; keep the default here
      }
      s3_capable_of[i] = profile->s3_capable ? 1 : 0;
      s3_delta_of[i] = profile->s3_capable
                           ? profile->power.idle_watts - profile->power.sleep_watts
                           : 0.0;
    }
  }
  // The pooled global-greedy sweep cannot attribute avoided hosts to a
  // specific rack, so it credits the cheapest delta in the fleet — keeping
  // the idealized number a bound rather than an overcount.
  Watts pooled_s3_delta = s3_delta_of[0];
  for (size_t i = 1; i < num_racks; ++i) {
    pooled_s3_delta = std::min(pooled_s3_delta, s3_delta_of[i]);
  }

  // Deterministic per-rack cap windows: expected-count rounding plus uniform
  // starts, all drawn from (datacenter seed, rack) — independent of rack
  // count and execution order, the same stream discipline src/fault uses.
  const bool caps_on =
      config_.rack_power_cap_watts > 0.0 && config_.cap_events_per_rack_day > 0.0;
  std::vector<std::vector<char>> capped;
  if (caps_on) {
    capped.resize(num_racks);
    const int span = std::max(
        1, static_cast<int>(config_.cap_event_duration.seconds() / interval_s));
    for (size_t i = 0; i < num_racks; ++i) {
      capped[i].assign(intervals, 0);
      Rng rng(DatacenterTopology::RackSeed(run.config.seed ^ kCapStreamSalt,
                                           racks[i]->rack));
      int windows = static_cast<int>(config_.cap_events_per_rack_day);
      if (rng.NextBool(config_.cap_events_per_rack_day - windows)) {
        ++windows;
      }
      for (int w = 0; w < windows; ++w) {
        const size_t start = rng.NextBelow(intervals);
        const size_t end = std::min(intervals, start + static_cast<size_t>(span));
        for (size_t t = start; t < end; ++t) {
          capped[i][t] = 1;
        }
        ++stats.cap_windows;
      }
    }
  }

  // A rack whose local day recorded injected faults never sponsors.
  std::vector<char> faulted(num_racks, 0);
  for (size_t i = 0; i < num_racks; ++i) {
    faulted[i] = racks[i]->metrics.faults_injected > 0 ? 1 : 0;
  }

  auto timeline = [&racks](size_t i, size_t t) -> const IntervalSnapshot& {
    return racks[i]->metrics.timeline[t];
  };

  // Auto-calibrate from the run itself: the capacity of a consolidation
  // host is the densest parked-per-powered-host packing any rack achieved
  // (a max over racks — order-independent), and "near-empty" is a quarter
  // of one host's worth. Both remain pure functions of the shard results.
  int capacity = config_.cons_host_vm_capacity;
  if (capacity <= 0) {
    capacity = 1;
    for (size_t i = 0; i < num_racks; ++i) {
      for (size_t t = 0; t < intervals; ++t) {
        const IntervalSnapshot& s = timeline(i, t);
        if (s.powered_consolidation_hosts > 0) {
          const int density = (ParkedVms(s) + s.powered_consolidation_hosts - 1) /
                              s.powered_consolidation_hosts;
          capacity = std::max(capacity, density);
        }
      }
    }
  }
  const int near_empty = config_.near_empty_max_parked > 0
                             ? config_.near_empty_max_parked
                             : std::max(1, capacity / 4);
  auto charge_move = [this, &stats](int vms) {
    const uint64_t bytes =
        static_cast<uint64_t>(vms) * config_.drain_bytes_per_vm;
    stats.cross_rack_traffic_bytes += bytes;
    stats.migration_energy += ToGiB(bytes) * config_.wire_joules_per_gib;
  };

  if (config_.mode == CoordinatorMode::kGlobalGreedy) {
    // The idealized bound: every interval, pool the whole datacenter's
    // parked population onto the fewest consolidation hosts — no locality,
    // no caps, no hysteresis, and migration is free.
    for (size_t t = 0; t < intervals; ++t) {
      long long parked = 0;
      long long powered = 0;
      for (size_t i = 0; i < num_racks; ++i) {
        parked += ParkedVms(timeline(i, t));
        powered += timeline(i, t).powered_consolidation_hosts;
      }
      const long long ideal =
          (parked + capacity - 1) / capacity;
      if (powered > ideal) {
        stats.energy_saved +=
            static_cast<double>(powered - ideal) * pooled_s3_delta * interval_s;
      }
    }
    return stats;
  }

  // kAssisted: the stateful drain sweep. All state is indexed by topology
  // position and updated in topology order, so the sweep is a pure function
  // of the rack results.
  struct DrainState {
    bool drained = false;
    size_t sponsor = 0;
    size_t since = 0;  // interval the drain started
  };
  std::vector<DrainState> state(num_racks);
  std::vector<int> extra(num_racks, 0);  // guest VMs parked into each sponsor

  // Sponsor search: same pod first, then the rest of the datacenter, both in
  // ascending rack order. Returns num_racks when nobody can take the load.
  auto find_sponsor = [&](size_t src, size_t t, int parked) -> size_t {
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t j = 0; j < num_racks; ++j) {
        const bool same_pod = racks[j]->pod == racks[src]->pod;
        if (j == src || same_pod != (pass == 0)) {
          continue;
        }
        if (state[j].drained) {
          continue;
        }
        const IntervalSnapshot& s = timeline(j, t);
        if (s.powered_consolidation_hosts < 1) {
          continue;
        }
        const double room = config_.sponsor_fill_ratio *
                            capacity *
                            s.powered_consolidation_hosts;
        if (ParkedVms(s) + extra[j] + parked > room) {
          continue;
        }
        if (faulted[j]) {
          ++stats.fault_excluded_sponsors;
          continue;
        }
        if (caps_on && capped[j][t]) {
          ++stats.cap_blocked_sponsorships;
          continue;
        }
        return j;
      }
    }
    return num_racks;
  };

  for (size_t t = 0; t < intervals; ++t) {
    // Recompute sponsor loads from this interval's demand: a drained rack's
    // guests track its own timeline, so the sponsor carries exactly what the
    // source would have parked locally.
    std::fill(extra.begin(), extra.end(), 0);
    for (size_t i = 0; i < num_racks; ++i) {
      if (state[i].drained) {
        extra[state[i].sponsor] += ParkedVms(timeline(i, t));
      }
    }

    // Phase 1: existing drains either return (demand rose past the
    // near-empty band after the hysteresis window) or earn this interval's
    // S3 credit for the consolidation hosts they keep asleep.
    for (size_t i = 0; i < num_racks; ++i) {
      if (!state[i].drained) {
        continue;
      }
      const IntervalSnapshot& s = timeline(i, t);
      const int parked = ParkedVms(s);
      if (parked > near_empty &&
          t - state[i].since >= static_cast<size_t>(config_.min_drain_intervals)) {
        ++stats.drain_returns;
        charge_move(parked);
        extra[state[i].sponsor] -= parked;
        state[i].drained = false;
        continue;
      }
      ++stats.drain_intervals;
      stats.energy_saved += static_cast<double>(s.powered_consolidation_hosts) *
                            s3_delta_of[i] * interval_s;
    }

    // Phase 2: near-empty racks look for a sponsor and drain.
    for (size_t i = 0; i < num_racks; ++i) {
      if (state[i].drained || extra[i] > 0) {
        continue;  // already drained, or currently sponsoring someone
      }
      if (s3_capable_of[i] == 0) {
        continue;  // its consolidation hosts cannot enter S3 — nothing to save
      }
      const IntervalSnapshot& s = timeline(i, t);
      const int parked = ParkedVms(s);
      if (parked < 1 || parked > near_empty ||
          s.powered_consolidation_hosts < 1) {
        continue;
      }
      if (caps_on && capped[i][t]) {
        continue;  // a capped rack is already shedding load locally
      }
      const size_t sponsor = find_sponsor(i, t, parked);
      if (sponsor == num_racks) {
        continue;
      }
      state[i] = DrainState{true, sponsor, t};
      extra[sponsor] += parked;
      ++stats.drains_started;
      stats.vms_drained += static_cast<uint64_t>(parked);
      charge_move(parked);
    }
  }
  return stats;
}

}  // namespace dc
}  // namespace oasis
