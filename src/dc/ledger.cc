#include "src/dc/ledger.h"

#include <algorithm>
#include <cstring>

namespace oasis {
namespace dc {
namespace {

// FNV-1a, folding 64-bit values byte-wise; doubles hash by bit pattern so
// the digest pins exact floating-point results, not approximations.
struct Fnv {
  uint64_t h = 1469598103934665603ull;

  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  void I64(long long v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
};

}  // namespace

DatacenterLedger DatacenterLedger::Build(const DatacenterRun& run,
                                         const CoordinatorStats& coordinator) {
  DatacenterLedger ledger;
  ledger.coordinator = coordinator;

  ledger.racks.reserve(run.racks.size());
  for (const RackResult& rack : run.racks) {
    RackLedgerRow row;
    row.rack = rack.rack;
    row.pod = rack.pod;
    row.users = run.config.rack.users();
    row.total_energy = rack.metrics.TotalEnergy();
    row.baseline_energy = rack.metrics.baseline_energy;
    row.savings = rack.metrics.EnergySavings();
    row.full_migrations = rack.metrics.full_migrations;
    row.partial_migrations = rack.metrics.partial_migrations;
    row.host_sleeps = rack.metrics.host_sleeps;
    row.host_wakes = rack.metrics.host_wakes;
    row.faults_injected = rack.metrics.faults_injected;
    row.events_dispatched = rack.metrics.events_dispatched;
    ledger.racks.push_back(row);
  }
  // Keyed and folded in ascending rack order: any permutation of run.racks
  // produces the same ledger bit for bit.
  std::sort(ledger.racks.begin(), ledger.racks.end(),
            [](const RackLedgerRow& a, const RackLedgerRow& b) { return a.rack < b.rack; });

  for (const RackLedgerRow& row : ledger.racks) {
    if (ledger.pods.empty() || ledger.pods.back().pod != row.pod) {
      PodLedgerRow pod;
      pod.pod = row.pod;
      ledger.pods.push_back(pod);
    }
    PodLedgerRow& pod = ledger.pods.back();
    pod.racks += 1;
    pod.total_energy += row.total_energy;
    pod.baseline_energy += row.baseline_energy;

    ledger.total_users += row.users;
    ledger.total_energy += row.total_energy;
    ledger.baseline_energy += row.baseline_energy;
    ledger.total_migrations += row.full_migrations + row.partial_migrations;
    ledger.total_faults += row.faults_injected;
    ledger.total_events += row.events_dispatched;
  }
  for (PodLedgerRow& pod : ledger.pods) {
    pod.savings =
        pod.baseline_energy > 0.0 ? 1.0 - pod.total_energy / pod.baseline_energy : 0.0;
  }
  return ledger;
}

uint64_t DatacenterLedger::Digest() const {
  Fnv fnv;
  fnv.U64(racks.size());
  for (const RackLedgerRow& row : racks) {
    fnv.I64(row.rack);
    fnv.I64(row.pod);
    fnv.I64(row.users);
    fnv.F64(row.total_energy);
    fnv.F64(row.baseline_energy);
    fnv.F64(row.savings);
    fnv.U64(row.full_migrations);
    fnv.U64(row.partial_migrations);
    fnv.U64(row.host_sleeps);
    fnv.U64(row.host_wakes);
    fnv.U64(row.faults_injected);
    fnv.U64(row.events_dispatched);
  }
  fnv.U64(pods.size());
  for (const PodLedgerRow& pod : pods) {
    fnv.I64(pod.pod);
    fnv.I64(pod.racks);
    fnv.F64(pod.total_energy);
    fnv.F64(pod.baseline_energy);
    fnv.F64(pod.savings);
  }
  fnv.I64(total_users);
  fnv.F64(total_energy);
  fnv.F64(baseline_energy);
  fnv.U64(total_migrations);
  fnv.U64(total_faults);
  fnv.U64(total_events);
  fnv.U64(coordinator.drains_started);
  fnv.U64(coordinator.drain_returns);
  fnv.U64(coordinator.vms_drained);
  fnv.U64(coordinator.drain_intervals);
  fnv.U64(coordinator.cross_rack_traffic_bytes);
  fnv.U64(coordinator.cap_windows);
  fnv.U64(coordinator.cap_blocked_sponsorships);
  fnv.U64(coordinator.fault_excluded_sponsors);
  fnv.F64(coordinator.energy_saved);
  fnv.F64(coordinator.migration_energy);
  return fnv.h;
}

}  // namespace dc
}  // namespace oasis
