// ShardRunner: execute every rack of a DatacenterTopology as a task on the
// existing exp::ThreadPool, one obs::RunContext per shard, contexts merged
// into the process-global collectors in topology order.
//
// This is the datacenter-scale twin of exp::RunParallel. The differences:
//   * the unit of work is a rack (a whole PaperCluster-style day), and the
//     result keeps each rack's position in the hierarchy;
//   * per-shard observability merges under a per-rack metrics namespace
//     ("dc.rack<i>."), so a merged registry still tells racks apart —
//     obs::MetricsRegistry::MergeFrom(other, prefix) exists for this. The
//     namespace applies at every job count (the serial path builds the same
//     run-local contexts when a global collector is enabled), so
//     OASIS_METRICS exports are byte-identical across OASIS_JOBS;
//   * jobs <= 1 runs the racks inline on the calling thread, skipping only
//     the thread pool, never the namespacing.
//
// Determinism contract: rack simulations share no state, contexts merge in
// topology order, and ClusterMetrics are folded nowhere here — so the
// DatacenterRun (and everything computed from it: ledger, coordinator,
// digests) is bit-identical at any OASIS_JOBS and any execution order.

#ifndef OASIS_SRC_DC_RUNNER_H_
#define OASIS_SRC_DC_RUNNER_H_

#include <cstdint>
#include <vector>

#include "src/cluster/metrics.h"
#include "src/dc/topology.h"
#include "src/exp/exp.h"

namespace oasis {
namespace dc {

// One simulated rack-day, with its place in the hierarchy.
struct RackResult {
  int rack = 0;
  int pod = 0;
  uint64_t seed = 0;  // the SplitMix64-derived seed the shard ran with
  ClusterMetrics metrics;
};

// Every rack's result, in topology order (ascending rack index). The
// coordinator and ledger both take this as their sole input.
struct DatacenterRun {
  DatacenterConfig config;
  std::vector<RackResult> racks;
};

class ShardRunner {
 public:
  explicit ShardRunner(int jobs) : jobs_(jobs) {}
  ShardRunner() : ShardRunner(exp::JobsFromEnv()) {}

  // Simulates every rack and returns the results in topology order.
  DatacenterRun Run(const DatacenterTopology& topology) const;

  int jobs() const { return jobs_; }

 private:
  int jobs_ = 1;
};

}  // namespace dc
}  // namespace oasis

#endif  // OASIS_SRC_DC_RUNNER_H_
