// DatacenterLedger: the merged per-rack accounting of a datacenter day.
//
// Build() folds a DatacenterRun (plus the coordinator's inter-rack action
// stats) into per-rack rows sorted by rack index, per-pod subtotals, and
// datacenter-wide totals. Because rows are keyed and sorted by rack index
// and every fold walks that order, the ledger — and its Digest() — is a
// pure function of the rack results: independent of OASIS_JOBS and of the
// order rack shards happened to execute or arrive in. The metamorphic suite
// pins exactly that (rack-permutation invariance, jobs 1-vs-N identity).

#ifndef OASIS_SRC_DC_LEDGER_H_
#define OASIS_SRC_DC_LEDGER_H_

#include <cstdint>
#include <vector>

#include "src/common/units.h"
#include "src/dc/coordinator.h"
#include "src/dc/runner.h"

namespace oasis {
namespace dc {

// One rack-day, reduced to the numbers the datacenter report needs.
struct RackLedgerRow {
  int rack = 0;
  int pod = 0;
  long long users = 0;
  Joules total_energy = 0.0;
  Joules baseline_energy = 0.0;
  double savings = 0.0;  // this rack's EnergySavings()
  uint64_t full_migrations = 0;
  uint64_t partial_migrations = 0;
  uint64_t host_sleeps = 0;
  uint64_t host_wakes = 0;
  uint64_t faults_injected = 0;
  uint64_t events_dispatched = 0;
};

struct PodLedgerRow {
  int pod = 0;
  int racks = 0;
  Joules total_energy = 0.0;
  Joules baseline_energy = 0.0;
  double savings = 0.0;
};

struct DatacenterLedger {
  // Per-rack rows sorted by rack index; per-pod subtotals sorted by pod.
  std::vector<RackLedgerRow> racks;
  std::vector<PodLedgerRow> pods;

  long long total_users = 0;
  Joules total_energy = 0.0;     // rack-local consumption, before coordinator
  Joules baseline_energy = 0.0;  // all home hosts powered all day
  uint64_t total_migrations = 0;  // full + partial, summed over racks
  uint64_t total_faults = 0;
  uint64_t total_events = 0;

  // The drain tier's contribution on top of the rack-local plans.
  CoordinatorStats coordinator;

  // Rack-local savings vs the unconsolidated baseline.
  double LocalSavings() const {
    return baseline_energy > 0.0 ? 1.0 - total_energy / baseline_energy : 0.0;
  }
  // Savings once the coordinator's net effect (S3 credits minus cross-rack
  // wire energy) is applied.
  double CoordinatedSavings() const {
    return baseline_energy > 0.0
               ? 1.0 - (total_energy - coordinator.NetSaved()) / baseline_energy
               : 0.0;
  }

  // Folds `run` + `coordinator` into the ledger. Rows are built keyed by
  // rack index and sorted, so any permutation of run.racks yields the same
  // ledger bit for bit.
  static DatacenterLedger Build(const DatacenterRun& run,
                                const CoordinatorStats& coordinator);

  // FNV-1a over every row and total, in sorted order, hashing doubles by
  // bit pattern — the merged-digest pin the acceptance criteria name.
  uint64_t Digest() const;
};

}  // namespace dc
}  // namespace oasis

#endif  // OASIS_SRC_DC_LEDGER_H_
