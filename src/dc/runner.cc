#include "src/dc/runner.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#include "src/exp/thread_pool.h"
#include "src/obs/prof.h"
#include "src/obs/run_context.h"

namespace oasis {
namespace dc {
namespace {

void FillResult(RackResult* out, const RackSpec& spec, SimulationResult result) {
  out->rack = spec.rack;
  out->pod = spec.pod;
  out->seed = spec.sim.seed;
  out->metrics = std::move(result.metrics);
}

}  // namespace

DatacenterRun ShardRunner::Run(const DatacenterTopology& topology) const {
  const std::vector<RackSpec>& racks = topology.racks();
  DatacenterRun run;
  run.config = topology.config();
  run.racks.resize(racks.size());

  // Workers beyond the hardware or the rack count only add scheduling churn.
  const int workers =
      std::min({jobs_, exp::HardwareJobs(), static_cast<int>(racks.size())});

  prof::ProfScope prof_wall(prof::Phase::kRunParallel);
  if (prof::Profiler::Enabled()) {
    prof::Profiler::Instance().NoteJobs(std::max(1, workers));
  }

  // Shards only need run-local collectors when a global collector would
  // record anything; with observability dark, every rack runs context-free
  // (all IfEnabled sites stay null) and the merge loop has nothing to do.
  // Unlike exp::RunParallel — whose serial path is pinned to the legacy
  // unprefixed output — the contexts are built on the serial path too: the
  // per-rack "dc.rack<i>." metric namespace is part of the datacenter's
  // observable surface, and building it identically at every job count is
  // what keeps OASIS_METRICS exports byte-identical across OASIS_JOBS.
  const bool collect = obs::Tracer::Global().enabled() ||
                       obs::MetricsRegistry::Global().enabled();
  std::vector<std::unique_ptr<obs::RunContext>> contexts(racks.size());
  {
    prof::ProfScope prof_setup(prof::Phase::kRunSetup);
    if (collect) {
      for (size_t i = 0; i < racks.size(); ++i) {
        prof::ProfScope prof_ctor(prof::Phase::kRunContextCtor);
        contexts[i] = std::make_unique<obs::RunContext>();
        contexts[i]->MirrorGlobalEnables();
      }
    }
  }

  auto run_rack = [&racks, &run, &contexts](size_t i) {
    prof::ProfScope prof_run(prof::Phase::kRunSim);
    obs::RunContext* context = contexts[i].get();
    obs::RunContext::Scope scope(context);
    FillResult(&run.racks[i], racks[i],
               ClusterSimulation(racks[i].sim, context).Run());
  };

  if (workers <= 1 || racks.size() <= 1) {
    // Inline on this thread — the shard order is the merge order, so the
    // parallel path below reproduces exactly this execution.
    for (size_t i = 0; i < racks.size(); ++i) {
      run_rack(i);
    }
  } else {
    exp::ThreadPool pool(workers);
    for (size_t i = 0; i < racks.size(); ++i) {
      pool.Submit([&run_rack, i]() { run_rack(i); });
    }
    pool.Wait();
  }

  // Serial topology-order merge under a per-rack namespace: rack 3's
  // counters land as "dc.rack3.<name>", so the merged registry still tells
  // shards apart and the merged output is identical at any job count.
  {
    prof::ProfScope prof_merge(prof::Phase::kRunMerge);
    for (size_t i = 0; i < racks.size(); ++i) {
      if (contexts[i] != nullptr) {
        contexts[i]->MergeIntoGlobals("dc.rack" + std::to_string(racks[i].rack) +
                                      ".");
      }
    }
  }
  return run;
}

}  // namespace dc
}  // namespace oasis
