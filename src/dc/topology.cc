#include "src/dc/topology.h"

#include <cstdio>
#include <cstdlib>

#include "src/power/host_profile.h"

namespace oasis {
namespace dc {

Status DatacenterConfig::Validate() const {
  if (total_racks <= 0) {
    return Status::InvalidArgument("total_racks must be positive");
  }
  if (racks_per_pod <= 0) {
    return Status::InvalidArgument("racks_per_pod must be positive");
  }
  if (rack.home_hosts <= 0 || rack.consolidation_hosts <= 0) {
    return Status::InvalidArgument("every rack needs home and consolidation hosts");
  }
  if (rack.vms_per_home <= 0) {
    return Status::InvalidArgument("rack.vms_per_home must be positive");
  }
  if (!IsRegisteredStrategyName(rack.strategy_name)) {
    return Status::InvalidArgument("rack.strategy_name '" + rack.strategy_name +
                                   "' names no registered strategy (registered: " +
                                   RegisteredStrategyNamesJoined() + ")");
  }
  for (const std::string& generation : pod_generations) {
    if (FindHostGeneration(generation) == nullptr) {
      return Status::InvalidArgument("pod_generations names unknown host generation '" +
                                     generation + "' (catalog: " +
                                     HostGenerationNames() + ")");
    }
  }
  return coordinator.Validate();
}

uint64_t DatacenterTopology::RackSeed(uint64_t base, int rack) {
  // SplitMix64 finalizer over base + rack * golden-gamma: the same mixer the
  // Rng seeding path uses, so adjacent rack indices yield decorrelated
  // simulation streams. Depends only on (base, rack) — never on the rack
  // count — which is what keeps small OASIS_DC_RACKS grids prefixes of the
  // full datacenter.
  uint64_t z = base + 0x9E3779B97F4A7C15ull * (static_cast<uint64_t>(rack) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

StatusOr<DatacenterTopology> DatacenterTopology::Build(const DatacenterConfig& config) {
  Status status = config.Validate();
  if (!status.ok()) {
    return status;
  }

  // The shared per-rack cluster shape, built once and stamped per rack with
  // its own seed. SetVmsPerHome scales host memory (and power,
  // capacity-proportionally) so dense racks stay representable.
  SimulationConfig shape;
  shape.cluster.num_home_hosts = config.rack.home_hosts;
  shape.cluster.num_consolidation_hosts = config.rack.consolidation_hosts;
  shape.cluster.SetVmsPerHome(config.rack.vms_per_home);
  shape.cluster.policy = config.rack.policy;
  shape.cluster.strategy_name = config.rack.strategy_name;
  shape.cluster.fault = config.rack.fault;
  shape.day = config.rack.day;
  status = shape.cluster.Validate();
  if (!status.ok()) {
    return status;
  }

  DatacenterTopology topology;
  topology.config_ = config;
  topology.racks_.reserve(static_cast<size_t>(config.total_racks));
  for (int r = 0; r < config.total_racks; ++r) {
    RackSpec spec;
    spec.rack = r;
    spec.pod = r / config.racks_per_pod;
    spec.sim = shape;
    spec.sim.seed = RackSeed(config.seed, r);
    // Per-pod hardware: the whole rack is one fleet segment of the pod's
    // generation. Depends only on (r, racks_per_pod, pod_generations), so
    // the rack-prefix property holds for hardware exactly as for seeds.
    if (!config.pod_generations.empty()) {
      const std::string& generation =
          config.pod_generations[static_cast<size_t>(spec.pod) %
                                 config.pod_generations.size()];
      spec.sim.cluster.fleet.segments = {
          {generation, config.rack.hosts()}};
      Status rack_valid = spec.sim.cluster.Validate();
      if (!rack_valid.ok()) {
        return rack_valid;
      }
    }
    topology.racks_.push_back(std::move(spec));
  }
  return topology;
}

void ApplyDatacenterEnvOverrides(DatacenterConfig* config) {
  const char* env = std::getenv("OASIS_DC_RACKS");
  if (env == nullptr || *env == '\0') {
    return;
  }
  char* end = nullptr;
  long value = std::strtol(env, &end, 10);
  if (end == nullptr || *end != '\0' || value <= 0) {
    std::fprintf(stderr,
                 "OASIS_DC_RACKS=%s is not a positive integer (rack-count override)\n",
                 env);
    std::exit(2);
  }
  config->total_racks = static_cast<int>(value);
}

}  // namespace dc
}  // namespace oasis
