// The global drain tier: the only component that acts *between* racks.
//
// Each rack runs the paper's full control plane locally (src/cluster); the
// GlobalCoordinator replays the merged per-rack interval timelines — in
// topology order, one planning interval at a time — and models the thin set
// of inter-rack actions a datacenter operator layers on top of rack-local
// consolidation:
//
//   * cross-rack drains: a rack whose consolidation tier is near-empty
//     (few parked VMs keeping >= 1 consolidation host powered) exports its
//     parked load to a sponsor rack with spare consolidation capacity —
//     same pod first — and powers its own consolidation hosts down to S3
//     for as long as the local demand signal stays low;
//   * rack-level power caps: deterministically sampled cap windows (the
//     same xoshiro/SplitMix discipline as src/fault) mark racks that must
//     shed load; the coordinator never sponsors load *into* a capped rack
//     and counts the placements the cap blocked;
//   * fault awareness: racks whose local day recorded injected faults are
//     never chosen as sponsors — a rack that crashed hosts is no place to
//     park another rack's VMs.
//
// The coordinator is an overlay over completed shard results, not a
// co-simulation: it charges cross-rack migration traffic and wire energy at
// drain start/stop and credits the S3 delta of the source rack's
// consolidation hosts per drained interval, using each rack's own timeline
// as the demand signal. That keeps it a pure, execution-order-independent
// function of the shard results — the property the metamorphic suite pins
// (jobs 1-vs-N identity, rack-permutation invariance, coordinator-off ==
// sum of independent rack runs). The modelling approximations are
// documented in DESIGN.md, "Datacenter hierarchy".

#ifndef OASIS_SRC_DC_COORDINATOR_H_
#define OASIS_SRC_DC_COORDINATOR_H_

#include <cstdint>

#include "src/common/status.h"
#include "src/common/units.h"

namespace oasis {
namespace dc {

struct DatacenterRun;  // src/dc/runner.h

enum class CoordinatorMode {
  kOff,           // per-rack-local: every rack keeps its own parked load
  kGlobalGreedy,  // idealized flat packing: no locality, caps or costs
  kAssisted,      // the drain tier above: locality + hysteresis + caps
};

const char* CoordinatorModeName(CoordinatorMode mode);

struct CoordinatorConfig {
  CoordinatorMode mode = CoordinatorMode::kAssisted;

  // A rack is drainable while its parked population (partial + full VMs on
  // consolidation hosts) is in [1, near_empty_max_parked] with at least one
  // consolidation host still powered. 0 = auto: a quarter of one
  // consolidation host's capacity.
  int near_empty_max_parked = 0;
  // Once drained, a rack stays drained for at least this many intervals
  // (anti-ping-pong hysteresis); it undrains as soon as the local demand
  // signal rises above near_empty_max_parked afterwards.
  int min_drain_intervals = 3;
  // Parked VMs a single powered consolidation host absorbs, and the
  // fraction of that capacity a sponsor may be filled to. 0 = auto: the
  // densest parked-VMs-per-powered-host packing any rack in the run
  // actually achieved (the empirically-proven limit, Fig 9's ratio).
  int cons_host_vm_capacity = 0;
  double sponsor_fill_ratio = 0.9;

  // Cross-rack move cost: partial-VM descriptor plus the idle working set
  // (~16 MiB + ~48 MiB), charged per drained VM at drain start and again at
  // return, plus per-GiB wire energy for the inter-rack fabric.
  uint64_t drain_bytes_per_vm = 64ull * 1024 * 1024;
  double wire_joules_per_gib = 180.0;

  // Rack power caps. With cap_events_per_rack_day > 0 and a positive cap,
  // each rack samples Poisson cap windows from (datacenter seed, rack) —
  // deterministic, per-rack streams exactly like the fault planner's.
  double rack_power_cap_watts = 0.0;
  double cap_events_per_rack_day = 0.0;
  SimTime cap_event_duration = SimTime::Hours(2.0);

  Status Validate() const;
};

// Everything the drain tier did, plus its net energy effect. All counters
// are exact and deterministic for a given DatacenterRun.
struct CoordinatorStats {
  uint64_t drains_started = 0;
  uint64_t drain_returns = 0;
  uint64_t vms_drained = 0;             // VM moves charged at drain starts
  uint64_t drain_intervals = 0;         // rack-intervals spent drained
  uint64_t cross_rack_traffic_bytes = 0;
  uint64_t cap_windows = 0;             // sampled cap windows across racks
  uint64_t cap_blocked_sponsorships = 0;
  uint64_t fault_excluded_sponsors = 0;
  Joules energy_saved = 0.0;       // S3 delta of drained consolidation hosts
  Joules migration_energy = 0.0;   // wire energy of cross-rack moves

  Joules NetSaved() const { return energy_saved - migration_energy; }
};

class GlobalCoordinator {
 public:
  explicit GlobalCoordinator(const CoordinatorConfig& config) : config_(config) {}

  // Replays `run`'s merged interval timelines and returns the inter-rack
  // action ledger. Pure: same run, same stats, regardless of how the shards
  // were executed. kOff returns all-zero stats.
  CoordinatorStats Coordinate(const DatacenterRun& run) const;

  const CoordinatorConfig& config() const { return config_; }

 private:
  CoordinatorConfig config_;
};

}  // namespace dc
}  // namespace oasis

#endif  // OASIS_SRC_DC_COORDINATOR_H_
