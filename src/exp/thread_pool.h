// A small work-stealing thread pool for the experiment runner.
//
// Each worker owns a deque: it pops its own work LIFO (cache-warm) and
// steals FIFO from the other workers when its deque drains, so a handful of
// long simulation runs spread across the pool without a central bottleneck.
// Submission round-robins across the deques; sleeping workers park on a
// condition variable and are woken per submission.
//
// The pool runs whole simulation runs (seconds each), not micro-tasks, so
// the design favours simplicity over lock-free cleverness: one mutex per
// deque plus one wake mutex is far below the noise floor at this grain.

#ifndef OASIS_SRC_EXP_THREAD_POOL_H_
#define OASIS_SRC_EXP_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace oasis {
namespace exp {

class ThreadPool {
 public:
  // Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(int threads);
  // Waits for all submitted work, then joins the workers.
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `fn` for execution on some worker. Never runs inline.
  void Submit(std::function<void()> fn);

  // Blocks until every task submitted so far has finished executing.
  void Wait();

  int size() const { return static_cast<int>(workers_.size()); }

 private:
  // enqueue_ns is stamped only while the wall-clock profiler is on
  // (OASIS_PROF); 0 means "not stamped", so a task submitted before the
  // profiler enabled never reports a bogus wait.
  struct Task {
    std::function<void()> fn;
    uint64_t enqueue_ns = 0;
  };

  struct WorkerQueue {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  // Pops one task (own deque back, else steal another's front) and runs it.
  bool RunOne(size_t self);
  void WorkerLoop(size_t self);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;  // workers park here when queues drain
  std::condition_variable idle_cv_;  // Wait() parks here until pending_ == 0
  std::atomic<size_t> queued_{0};    // tasks sitting in some deque
  std::atomic<size_t> pending_{0};   // tasks submitted but not yet finished
  std::atomic<size_t> next_queue_{0};
  bool stop_ = false;  // guarded by wake_mu_
};

}  // namespace exp
}  // namespace oasis

#endif  // OASIS_SRC_EXP_THREAD_POOL_H_
