#include "src/exp/thread_pool.h"

#include <algorithm>
#include <utility>

#include "src/obs/prof.h"

namespace oasis {
namespace exp {

ThreadPool::ThreadPool(int threads) {
  int n = std::max(1, threads);
  queues_.reserve(n);
  for (int i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i]() { WorkerLoop(static_cast<size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> fn) {
  Task task;
  task.fn = std::move(fn);
  if (prof::Profiler::Enabled()) {
    task.enqueue_ns = prof::Profiler::NowNs();
    prof::Profiler::Instance().AddCount(prof::Count::kPoolWakes);
  }
  pending_.fetch_add(1, std::memory_order_relaxed);
  size_t q = next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[q]->mu);
    queues_[q]->tasks.push_back(std::move(task));
  }
  queued_.fetch_add(1, std::memory_order_release);
  // Lock ordering note: taking wake_mu_ here (not just notifying) closes the
  // window where a worker has checked `queued_ == 0` but not yet parked.
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
  }
  wake_cv_.notify_one();
}

bool ThreadPool::RunOne(size_t self) {
  Task task;
  bool stolen = false;
  {
    // Own deque first, newest task (LIFO keeps the just-submitted work warm).
    std::lock_guard<std::mutex> lock(queues_[self]->mu);
    if (!queues_[self]->tasks.empty()) {
      task = std::move(queues_[self]->tasks.back());
      queues_[self]->tasks.pop_back();
    }
  }
  if (!task.fn) {
    // Steal the oldest task from a sibling, scanning from the next worker so
    // victims rotate instead of worker 0 being picked clean.
    for (size_t step = 1; step < queues_.size() && !task.fn; ++step) {
      size_t victim = (self + step) % queues_.size();
      std::lock_guard<std::mutex> lock(queues_[victim]->mu);
      if (!queues_[victim]->tasks.empty()) {
        task = std::move(queues_[victim]->tasks.front());
        queues_[victim]->tasks.pop_front();
        stolen = true;
      }
    }
  }
  if (!task.fn) {
    return false;
  }
  queued_.fetch_sub(1, std::memory_order_acquire);
  if (prof::Profiler::Enabled()) {
    prof::Profiler& profiler = prof::Profiler::Instance();
    uint64_t start = prof::Profiler::NowNs();
    if (task.enqueue_ns != 0) {
      profiler.RecordSpan(prof::Phase::kPoolTaskWait, task.enqueue_ns, start);
    }
    profiler.AddCount(stolen ? prof::Count::kPoolSteals : prof::Count::kPoolOwnPops);
    profiler.AddCount(prof::Count::kTasksRun);
    task.fn();
    profiler.RecordSpan(prof::Phase::kPoolTaskRun, start, prof::Profiler::NowNs());
  } else {
    task.fn();
  }
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(wake_mu_);
    idle_cv_.notify_all();
  }
  return true;
}

void ThreadPool::WorkerLoop(size_t self) {
  if (prof::Profiler::Enabled()) {
    prof::Profiler::Instance().LabelCurrentThread("worker", static_cast<int>(self));
  }
  for (;;) {
    if (RunOne(self)) {
      continue;
    }
    // Idle gap: nothing runnable anywhere. Spans the park and the wake, so
    // per-worker idle shares in the profile add up against wall time.
    bool profiling = prof::Profiler::Enabled();
    uint64_t idle_start = profiling ? prof::Profiler::NowNs() : 0;
    bool stopping = false;
    {
      std::unique_lock<std::mutex> lock(wake_mu_);
      wake_cv_.wait(lock, [this]() {
        return stop_ || queued_.load(std::memory_order_acquire) > 0;
      });
      stopping = stop_ && queued_.load(std::memory_order_acquire) == 0;
    }
    if (profiling) {
      prof::Profiler::Instance().RecordSpan(prof::Phase::kPoolIdle, idle_start,
                                            prof::Profiler::NowNs());
    }
    if (stopping) {
      return;
    }
  }
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(wake_mu_);
  idle_cv_.wait(lock, [this]() {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

}  // namespace exp
}  // namespace oasis
