#include "src/exp/thread_pool.h"

#include <algorithm>
#include <utility>

namespace oasis {
namespace exp {

ThreadPool::ThreadPool(int threads) {
  int n = std::max(1, threads);
  queues_.reserve(n);
  for (int i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i]() { WorkerLoop(static_cast<size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> fn) {
  pending_.fetch_add(1, std::memory_order_relaxed);
  size_t q = next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[q]->mu);
    queues_[q]->tasks.push_back(std::move(fn));
  }
  queued_.fetch_add(1, std::memory_order_release);
  // Lock ordering note: taking wake_mu_ here (not just notifying) closes the
  // window where a worker has checked `queued_ == 0` but not yet parked.
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
  }
  wake_cv_.notify_one();
}

bool ThreadPool::RunOne(size_t self) {
  std::function<void()> task;
  {
    // Own deque first, newest task (LIFO keeps the just-submitted work warm).
    std::lock_guard<std::mutex> lock(queues_[self]->mu);
    if (!queues_[self]->tasks.empty()) {
      task = std::move(queues_[self]->tasks.back());
      queues_[self]->tasks.pop_back();
    }
  }
  if (!task) {
    // Steal the oldest task from a sibling, scanning from the next worker so
    // victims rotate instead of worker 0 being picked clean.
    for (size_t step = 1; step < queues_.size() && !task; ++step) {
      size_t victim = (self + step) % queues_.size();
      std::lock_guard<std::mutex> lock(queues_[victim]->mu);
      if (!queues_[victim]->tasks.empty()) {
        task = std::move(queues_[victim]->tasks.front());
        queues_[victim]->tasks.pop_front();
      }
    }
  }
  if (!task) {
    return false;
  }
  queued_.fetch_sub(1, std::memory_order_acquire);
  task();
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(wake_mu_);
    idle_cv_.notify_all();
  }
  return true;
}

void ThreadPool::WorkerLoop(size_t self) {
  for (;;) {
    if (RunOne(self)) {
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait(lock, [this]() {
      return stop_ || queued_.load(std::memory_order_acquire) > 0;
    });
    if (stop_ && queued_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(wake_mu_);
  idle_cv_.wait(lock, [this]() {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

}  // namespace exp
}  // namespace oasis
