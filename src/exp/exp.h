// The deterministic parallel experiment runner.
//
// Every bench/example main used to loop over SimulationConfigs and call
// ClusterSimulation::Run() serially. This module keeps the exact observable
// behaviour of that loop — including byte-identical stdout, CSV exports,
// trace files and metric values — while executing the independent runs on a
// work-stealing thread pool:
//
//   oasis::exp::ExperimentPlan plan;
//   auto span = plan.AddRepetitions(config, 5);   // seeds derived per rep
//   auto results = oasis::exp::RunParallel(plan); // OASIS_JOBS workers
//   auto agg = oasis::exp::CollectRepeated(results, span);
//
// The determinism contract (DESIGN.md § Performance & parallel experiments):
//   * each planned run is an independent simulation with a seed fixed at
//     plan-build time; execution order cannot influence any run's result;
//   * every run collects trace/metrics into a run-local obs::RunContext;
//     after all runs finish, contexts merge into the process-global
//     collectors serially, in plan order;
//   * aggregation (CollectRepeated) folds results in plan order, so the
//     floating-point reduction order matches the serial loop exactly;
//   * jobs <= 1 executes the runs inline on the calling thread with no
//     contexts at all — the exact legacy code path.
// Under those rules the output is byte-identical for every value of
// OASIS_JOBS.

#ifndef OASIS_SRC_EXP_EXP_H_
#define OASIS_SRC_EXP_EXP_H_

#include <cstdint>
#include <vector>

#include "src/core/oasis.h"

namespace oasis {
namespace exp {

// One entry of an ExperimentPlan: a fully-resolved SimulationConfig (seed
// already derived) plus where it sits in the plan.
struct PlannedRun {
  SimulationConfig config;
  int repetition = 0;  // index within its AddRepetitions group (0 for Add)
  size_t index = 0;    // position in the plan == index into RunParallel's result
};

// The half-open group [first, first + count) that AddRepetitions appended.
struct RepetitionSpan {
  size_t first = 0;
  int count = 0;
};

class ExperimentPlan {
 public:
  // Appends one run with `config` exactly as given; returns its plan index.
  size_t Add(const SimulationConfig& config);

  // Appends `runs` repetitions of `config`, rep r seeded with
  // DeriveSeed(config.seed, r) — the same derivation oasis::RunRepeated has
  // always used, so aggregates reproduce the serial numbers bit-for-bit.
  RepetitionSpan AddRepetitions(const SimulationConfig& config, int runs);

  // seed_r = base + r * 0x9E3779B9 (golden-ratio stride, distinct streams).
  static uint64_t DeriveSeed(uint64_t base, int repetition);

  const std::vector<PlannedRun>& runs() const { return runs_; }
  size_t size() const { return runs_.size(); }
  bool empty() const { return runs_.empty(); }

 private:
  std::vector<PlannedRun> runs_;
};

// std::thread::hardware_concurrency(), at least 1.
int HardwareJobs();

// OASIS_JOBS when set to a positive integer, else HardwareJobs().
int JobsFromEnv();

// The worker count RunParallel actually uses when asked for `jobs` over
// `run_count` runs: clamped to the hardware (more workers than cores add
// scheduling churn without parallelism) and to the run count (extra workers
// would only idle), floor 1 (the serial inline path). Exposed so sweep
// harnesses can tell which requested job counts collapse to the same
// execution — on a 1-core host every jobs=N point is the same serial run.
int EffectiveWorkers(int jobs, size_t run_count);

// Executes every planned run and returns results indexed by plan position.
// jobs > 1: a ThreadPool of min(jobs, plan.size()) workers, one run-local
// obs::RunContext per run, contexts merged into the globals in plan order
// after the pool drains. jobs <= 1: the inline legacy loop.
std::vector<SimulationResult> RunParallel(const ExperimentPlan& plan, int jobs);
inline std::vector<SimulationResult> RunParallel(const ExperimentPlan& plan) {
  return RunParallel(plan, JobsFromEnv());
}

// Folds one repetition group of `results` into the RepeatedRunResult shape,
// adding to the OnlineStats in repetition order (the serial reduction
// order). Moves the group's SimulationResults out of `results`.
RepeatedRunResult CollectRepeated(std::vector<SimulationResult>& results,
                                  RepetitionSpan span);

// Drop-in parallel equivalent of oasis::RunRepeated(config, runs).
RepeatedRunResult RunRepeated(const SimulationConfig& config, int runs, int jobs);
inline RepeatedRunResult RunRepeated(const SimulationConfig& config, int runs) {
  return RunRepeated(config, runs, JobsFromEnv());
}

}  // namespace exp
}  // namespace oasis

#endif  // OASIS_SRC_EXP_EXP_H_
