#include "src/exp/exp.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <thread>
#include <utility>

#include "src/exp/thread_pool.h"
#include "src/obs/prof.h"
#include "src/obs/run_context.h"

namespace oasis {
namespace exp {

size_t ExperimentPlan::Add(const SimulationConfig& config) {
  PlannedRun run;
  run.config = config;
  run.repetition = 0;
  run.index = runs_.size();
  runs_.push_back(std::move(run));
  return runs_.back().index;
}

RepetitionSpan ExperimentPlan::AddRepetitions(const SimulationConfig& config, int runs) {
  RepetitionSpan span{runs_.size(), runs};
  for (int r = 0; r < runs; ++r) {
    PlannedRun run;
    run.config = config;
    run.config.seed = DeriveSeed(config.seed, r);
    run.repetition = r;
    run.index = runs_.size();
    runs_.push_back(std::move(run));
  }
  return span;
}

uint64_t ExperimentPlan::DeriveSeed(uint64_t base, int repetition) {
  return base + static_cast<uint64_t>(repetition) * 0x9E3779B9ull;
}

int HardwareJobs() {
  unsigned n = std::thread::hardware_concurrency();
  return n > 0 ? static_cast<int>(n) : 1;
}

int JobsFromEnv() {
  const char* env = std::getenv("OASIS_JOBS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    long value = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && value > 0) {
      return static_cast<int>(value);
    }
  }
  return HardwareJobs();
}

int EffectiveWorkers(int jobs, size_t run_count) {
  // Workers beyond the hardware add scheduling churn without parallelism
  // (the profiler attributed the jobs=4 loss on small hosts to exactly
  // that); beyond the run count they would only idle. A one-worker pool is
  // pure overhead over the inline loop — and the plan-order merge contract
  // makes the two paths byte-identical — so it takes the serial path too.
  return std::max(1, std::min({jobs, HardwareJobs(), static_cast<int>(run_count)}));
}

std::vector<SimulationResult> RunParallel(const ExperimentPlan& plan, int jobs) {
  const std::vector<PlannedRun>& runs = plan.runs();
  std::vector<SimulationResult> results(runs.size());
  const int workers = EffectiveWorkers(jobs, runs.size());
  if (workers <= 1 || runs.size() <= 1) {
    // The legacy serial path: inline on this thread, straight into whatever
    // collectors are in effect (normally the process globals).
    prof::ProfScope prof_wall(prof::Phase::kRunParallel);
    if (prof::Profiler::Enabled()) {
      prof::Profiler::Instance().NoteJobs(1);
    }
    for (const PlannedRun& run : runs) {
      prof::ProfScope prof_run(prof::Phase::kRunSim);
      results[run.index] = ClusterSimulation(run.config).Run();
    }
    return results;
  }

  prof::ProfScope prof_wall(prof::Phase::kRunParallel);
  if (prof::Profiler::Enabled()) {
    prof::Profiler::Instance().NoteJobs(workers);
  }

  // One run-local context per run, created up-front on this thread so the
  // enable snapshot is taken once, before any worker races a concurrent
  // SetEnabled. This loop is serial overhead the profiler charges to
  // exp.run_setup (with one obs.run_context_ctor sample per context).
  // With both global collectors dark — the common bench configuration —
  // the contexts would collect nothing and merge nothing, so none are
  // built: every IfEnabled site stays null and the runs execute
  // context-free, exactly like the serial path with observability off.
  const bool collect = obs::Tracer::Global().enabled() ||
                       obs::MetricsRegistry::Global().enabled();
  std::vector<std::unique_ptr<obs::RunContext>> contexts(runs.size());
  {
    prof::ProfScope prof_setup(prof::Phase::kRunSetup);
    if (collect) {
      for (size_t i = 0; i < runs.size(); ++i) {
        prof::ProfScope prof_ctor(prof::Phase::kRunContextCtor);
        contexts[i] = std::make_unique<obs::RunContext>();
        contexts[i]->MirrorGlobalEnables();
      }
    }
  }

  {
    ThreadPool pool(workers);
    for (size_t i = 0; i < runs.size(); ++i) {
      pool.Submit([&runs, &results, &contexts, i]() {
        // The Scope reroutes instrumentation reached through thread-local
        // lookup (log sim-time, IfEnabled sites outside the manager); the
        // ctor argument covers the manager's own resolution.
        prof::ProfScope prof_run(prof::Phase::kRunSim);
        obs::RunContext::Scope scope(contexts[i].get());
        results[i] = ClusterSimulation(runs[i].config, contexts[i].get()).Run();
      });
    }
    pool.Wait();
  }

  // Serial plan-order merge: the global tracer sees run 0's events, then
  // run 1's, ... exactly as a serial execution would have recorded them, so
  // OASIS_TRACE / OASIS_METRICS exports are byte-identical. This is the
  // serial tail Amdahl charges against scaling; the profiler reports its
  // share of wall time as merge_serial_fraction.
  {
    prof::ProfScope prof_merge(prof::Phase::kRunMerge);
    for (size_t i = 0; i < runs.size(); ++i) {
      if (contexts[i] != nullptr) {
        contexts[i]->MergeIntoGlobals();
      }
    }
  }
  return results;
}

RepeatedRunResult CollectRepeated(std::vector<SimulationResult>& results,
                                  RepetitionSpan span) {
  RepeatedRunResult out;
  for (int r = 0; r < span.count; ++r) {
    SimulationResult& result = results[span.first + static_cast<size_t>(r)];
    out.savings.Add(result.metrics.EnergySavings());
    out.total_energy_kwh.Add(ToKWh(result.metrics.TotalEnergy()));
    out.baseline_energy_kwh.Add(ToKWh(result.metrics.baseline_energy));
    out.runs.push_back(std::move(result));
  }
  return out;
}

RepeatedRunResult RunRepeated(const SimulationConfig& config, int runs, int jobs) {
  ExperimentPlan plan;
  RepetitionSpan span = plan.AddRepetitions(config, runs);
  std::vector<SimulationResult> results = RunParallel(plan, jobs);
  return CollectRepeated(results, span);
}

}  // namespace exp
}  // namespace oasis
