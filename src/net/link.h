// Link and shared-channel transfer-time models.
//
// Two primitives cover every wire in the system: a Link turns byte counts
// into durations; a SharedChannel additionally serializes concurrent
// transfers (a host NIC during a reintegration storm, the shared SAS drive
// during memory uploads), which is what produces the Fig 11 latency tail.

#ifndef OASIS_SRC_NET_LINK_H_
#define OASIS_SRC_NET_LINK_H_

#include <cstdint>

#include "src/common/units.h"

namespace oasis {

// Effective sequential bandwidths used across the simulation, from the
// paper's measurements and its cited sources.
inline constexpr double kGigEBytesPerSec = 117.0 * kMiB;      // 1 GigE effective
inline constexpr double kTenGigEBytesPerSec = 1170.0 * kMiB;  // 10 GigE effective
inline constexpr double kSasBytesPerSec = 128.0 * kMiB;       // §4.3 measurement
// Effective pre-copy live-migration throughput over 10 GigE: §5.1 assumes a
// 4 GiB VM migrates in 10 s (from Deshpande et al.), i.e. ~409.6 MiB/s once
// dirty-round overhead is folded in.
inline constexpr double kLiveMigrationBytesPerSec = 4.0 * 1024 * kMiB / 10.0;

class Link {
 public:
  Link(double bytes_per_second, SimTime latency)
      : bytes_per_second_(bytes_per_second), latency_(latency) {}

  double bytes_per_second() const { return bytes_per_second_; }
  SimTime latency() const { return latency_; }

  // Duration of one isolated transfer of `bytes`.
  SimTime TransferTime(uint64_t bytes) const;

 private:
  double bytes_per_second_;
  SimTime latency_;
};

// A serializing channel: transfers queue FIFO and each takes
// link.TransferTime. Callers pass the current simulated time and receive the
// completion time; the channel tracks its own backlog.
class SharedChannel {
 public:
  explicit SharedChannel(Link link) : link_(link) {}

  // Enqueues a transfer arriving at `now`; returns when it completes.
  SimTime EnqueueTransfer(SimTime now, uint64_t bytes);

  // When the channel drains, given no further arrivals.
  SimTime busy_until() const { return busy_until_; }

  // Queueing delay a transfer arriving at `now` would suffer before its own
  // service starts.
  SimTime QueueDelay(SimTime now) const;

  // Takes the channel out of service for `duration` starting at `from`
  // (which may lie in the past, covering an outage discovered at repair
  // time): queued and future transfers finish `duration` later. Used by
  // fault injection to model a dead memory-server board stalling its SAS
  // path.
  void InjectOutage(SimTime from, SimTime duration);

  const Link& link() const { return link_; }

  uint64_t total_bytes() const { return total_bytes_; }
  uint64_t total_transfers() const { return total_transfers_; }
  uint64_t outages() const { return outages_; }

 private:
  Link link_;
  SimTime busy_until_ = SimTime::Zero();
  uint64_t total_bytes_ = 0;
  uint64_t total_transfers_ = 0;
  uint64_t outages_ = 0;
};

}  // namespace oasis

#endif  // OASIS_SRC_NET_LINK_H_
