#include "src/net/link.h"

#include <algorithm>
#include <cassert>

namespace oasis {

SimTime Link::TransferTime(uint64_t bytes) const {
  assert(bytes_per_second_ > 0.0);
  double seconds = static_cast<double>(bytes) / bytes_per_second_;
  return latency_ + SimTime::Seconds(seconds);
}

SimTime SharedChannel::EnqueueTransfer(SimTime now, uint64_t bytes) {
  SimTime start = std::max(now, busy_until_);
  SimTime done = start + link_.TransferTime(bytes);
  busy_until_ = done;
  total_bytes_ += bytes;
  ++total_transfers_;
  return done;
}

SimTime SharedChannel::QueueDelay(SimTime now) const {
  return busy_until_ > now ? busy_until_ - now : SimTime::Zero();
}

void SharedChannel::InjectOutage(SimTime from, SimTime duration) {
  assert(duration >= SimTime::Zero());
  busy_until_ = std::max(busy_until_, from) + duration;
  ++outages_;
}

}  // namespace oasis
