#include "src/net/traffic.h"

#include <sstream>

#include "src/common/units.h"

namespace oasis {

const char* TrafficCategoryName(TrafficCategory c) {
  switch (c) {
    case TrafficCategory::kFullMigration:
      return "full-migration";
    case TrafficCategory::kPartialDescriptor:
      return "partial-descriptor";
    case TrafficCategory::kMemoryUpload:
      return "memory-upload";
    case TrafficCategory::kOnDemandPages:
      return "on-demand-pages";
    case TrafficCategory::kReintegration:
      return "reintegration";
    case TrafficCategory::kCategoryCount:
      break;
  }
  return "?";
}

void TrafficAccounting::Add(TrafficCategory c, uint64_t bytes) {
  bytes_[static_cast<size_t>(c)] += bytes;
  ++counts_[static_cast<size_t>(c)];
}

uint64_t TrafficAccounting::Total(TrafficCategory c) const {
  return bytes_[static_cast<size_t>(c)];
}

uint64_t TrafficAccounting::Count(TrafficCategory c) const {
  return counts_[static_cast<size_t>(c)];
}

uint64_t TrafficAccounting::NetworkTotal() const {
  uint64_t total = 0;
  for (size_t c = 0; c < bytes_.size(); ++c) {
    if (static_cast<TrafficCategory>(c) != TrafficCategory::kMemoryUpload) {
      total += bytes_[c];
    }
  }
  return total;
}

uint64_t TrafficAccounting::PartialMigrationTotal() const {
  return Total(TrafficCategory::kPartialDescriptor) + Total(TrafficCategory::kOnDemandPages) +
         Total(TrafficCategory::kReintegration);
}

void TrafficAccounting::MergeFrom(const TrafficAccounting& other) {
  for (size_t c = 0; c < bytes_.size(); ++c) {
    bytes_[c] += other.bytes_[c];
    counts_[c] += other.counts_[c];
  }
}

void TrafficAccounting::Reset() {
  bytes_.fill(0);
  counts_.fill(0);
}

std::string TrafficAccounting::Summary() const {
  std::ostringstream os;
  for (size_t c = 0; c < bytes_.size(); ++c) {
    if (c > 0) {
      os << ", ";
    }
    os << TrafficCategoryName(static_cast<TrafficCategory>(c)) << "="
       << FormatBytes(bytes_[c]);
  }
  return os.str();
}

}  // namespace oasis
