// Cluster-wide traffic accounting by transfer purpose — the data behind the
// Fig 10 network-transfer breakdown.

#ifndef OASIS_SRC_NET_TRAFFIC_H_
#define OASIS_SRC_NET_TRAFFIC_H_

#include <array>
#include <cstdint>
#include <string>

namespace oasis {

enum class TrafficCategory {
  kFullMigration = 0,    // pre-copy live migrations over the rack network
  kPartialDescriptor,    // VM descriptor push creating a partial VM
  kMemoryUpload,         // home -> memory server image writes (SAS, off-network)
  kOnDemandPages,        // memory server -> partial VM page fetches
  kReintegration,        // dirty pages pushed back to the VM's home
  kCategoryCount,
};

const char* TrafficCategoryName(TrafficCategory c);

class TrafficAccounting {
 public:
  void Add(TrafficCategory c, uint64_t bytes);
  uint64_t Total(TrafficCategory c) const;
  uint64_t Count(TrafficCategory c) const;

  // Everything that crosses the datacenter network. Memory uploads travel
  // over the host-local SAS channel (§4.3: "memory transfer traffic from the
  // host to the memory server does not reach the datacenter network").
  uint64_t NetworkTotal() const;

  // Partial-migration traffic as Fig 10 groups it: descriptor pushes,
  // on-demand fetches and reintegration.
  uint64_t PartialMigrationTotal() const;

  void MergeFrom(const TrafficAccounting& other);
  void Reset();

  std::string Summary() const;

 private:
  std::array<uint64_t, static_cast<size_t>(TrafficCategory::kCategoryCount)> bytes_{};
  std::array<uint64_t, static_cast<size_t>(TrafficCategory::kCategoryCount)> counts_{};
};

}  // namespace oasis

#endif  // OASIS_SRC_NET_TRAFFIC_H_
