# Golden-file test driver, invoked via `cmake -P`:
#
#   cmake -DBINARY=<exe> -DGOLDEN=<repo>/tests/golden/<name>.txt
#         -DWORK=<scratch dir> [-DUPDATE=1] -P cmake/RunGolden.cmake
#
# Runs BINARY with a pinned environment — OASIS_BENCH_RUNS=2 and
# OASIS_JOBS=2 fixed, every other OASIS_* knob that could change stdout
# scrubbed (OASIS_CHECK deliberately passes through, so CI runs the golden
# suite with the invariant checker in strict mode; OASIS_PROF passes through
# too — the profiler's contract is that stdout is byte-identical in every
# mode, and running goldens under OASIS_PROF=summary proves it; OASIS_PLAN
# passes through for the same reason — the planner backends are pinned
# byte-identical, and CI runs the goldens under all three) — captures
# stdout, and
# compares it byte-for-byte against GOLDEN. On mismatch the test fails with
# both SHA-256 digests and keeps the observed output next to the scratch dir
# for upload/diffing. With UPDATE=1 the observed output replaces the golden
# file instead: behavioral drift becomes a reviewed diff, never an accident.

foreach(required BINARY GOLDEN WORK)
  if(NOT DEFINED ${required})
    message(FATAL_ERROR "RunGolden.cmake: -D${required}=... is required")
  endif()
endforeach()

get_filename_component(name "${GOLDEN}" NAME_WE)
file(MAKE_DIRECTORY "${WORK}")
set(observed "${WORK}/${name}.out")

# EXTRA_ENV: optional semicolon-separated VAR=value pairs appended after the
# pinned environment, for binaries whose golden needs a per-test knob (e.g.
# datacenter_day pins OASIS_DC_RACKS=8 — the CI smoke grid, not the full
# 256-rack day). The knob is scrubbed first so only the pin applies.
if(NOT DEFINED EXTRA_ENV)
  set(EXTRA_ENV "")
endif()

execute_process(
  COMMAND "${CMAKE_COMMAND}" -E env
          --unset=OASIS_SEED --unset=OASIS_TRACE --unset=OASIS_METRICS
          --unset=OASIS_TRACE_CAPACITY --unset=OASIS_LOG_LEVEL
          --unset=OASIS_CSV_DIR --unset=OASIS_FUZZ_TRIALS
          --unset=OASIS_DC_RACKS --unset=OASIS_FORECAST_WINDOW
          --unset=OASIS_FLEET
          OASIS_BENCH_RUNS=2 OASIS_JOBS=2 "OASIS_BENCH_JSON=${WORK}/${name}.json"
          ${EXTRA_ENV}
          "${BINARY}"
  WORKING_DIRECTORY "${WORK}"
  OUTPUT_FILE "${observed}"
  RESULT_VARIABLE status)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "golden ${name}: ${BINARY} exited with status ${status}")
endif()

if(UPDATE)
  configure_file("${observed}" "${GOLDEN}" COPYONLY)
  file(SHA256 "${GOLDEN}" digest)
  message(STATUS "golden ${name}: updated ${GOLDEN} (sha256 ${digest})")
  return()
endif()

if(NOT EXISTS "${GOLDEN}")
  message(FATAL_ERROR "golden ${name}: ${GOLDEN} missing - run tools/update_golden.sh "
                      "and review/commit the result")
endif()

file(SHA256 "${GOLDEN}" want)
file(SHA256 "${observed}" got)
if(NOT want STREQUAL got)
  message(FATAL_ERROR "golden ${name}: output drifted\n"
                      "  expected sha256 ${want} (${GOLDEN})\n"
                      "  observed sha256 ${got} (${observed})\n"
                      "If the change is intentional, run tools/update_golden.sh and "
                      "commit the reviewed diff.")
endif()
message(STATUS "golden ${name}: output matches (sha256 ${got})")
