# Empty dependencies file for manager_scenario_test.
# This may be replaced when dependencies are built.
