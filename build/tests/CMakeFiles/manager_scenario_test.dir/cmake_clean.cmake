file(REMOVE_RECURSE
  "CMakeFiles/manager_scenario_test.dir/manager_scenario_test.cpp.o"
  "CMakeFiles/manager_scenario_test.dir/manager_scenario_test.cpp.o.d"
  "manager_scenario_test"
  "manager_scenario_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manager_scenario_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
