# Empty dependencies file for compression_fuzz_test.
# This may be replaced when dependencies are built.
