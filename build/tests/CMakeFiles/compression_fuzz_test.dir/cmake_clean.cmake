file(REMOVE_RECURSE
  "CMakeFiles/compression_fuzz_test.dir/compression_fuzz_test.cpp.o"
  "CMakeFiles/compression_fuzz_test.dir/compression_fuzz_test.cpp.o.d"
  "compression_fuzz_test"
  "compression_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compression_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
