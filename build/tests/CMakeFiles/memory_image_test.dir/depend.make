# Empty dependencies file for memory_image_test.
# This may be replaced when dependencies are built.
