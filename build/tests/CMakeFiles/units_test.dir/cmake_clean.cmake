file(REMOVE_RECURSE
  "CMakeFiles/units_test.dir/units_test.cpp.o"
  "CMakeFiles/units_test.dir/units_test.cpp.o.d"
  "units_test"
  "units_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/units_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
