# Empty compiler generated dependencies file for idleness_test.
# This may be replaced when dependencies are built.
