file(REMOVE_RECURSE
  "CMakeFiles/idleness_test.dir/idleness_test.cpp.o"
  "CMakeFiles/idleness_test.dir/idleness_test.cpp.o.d"
  "idleness_test"
  "idleness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idleness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
