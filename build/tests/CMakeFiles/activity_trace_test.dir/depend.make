# Empty dependencies file for activity_trace_test.
# This may be replaced when dependencies are built.
