file(REMOVE_RECURSE
  "CMakeFiles/activity_trace_test.dir/activity_trace_test.cpp.o"
  "CMakeFiles/activity_trace_test.dir/activity_trace_test.cpp.o.d"
  "activity_trace_test"
  "activity_trace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/activity_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
