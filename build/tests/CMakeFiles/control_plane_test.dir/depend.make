# Empty dependencies file for control_plane_test.
# This may be replaced when dependencies are built.
