# Empty compiler generated dependencies file for working_set_test.
# This may be replaced when dependencies are built.
