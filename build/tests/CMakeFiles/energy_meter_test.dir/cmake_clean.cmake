file(REMOVE_RECURSE
  "CMakeFiles/energy_meter_test.dir/energy_meter_test.cpp.o"
  "CMakeFiles/energy_meter_test.dir/energy_meter_test.cpp.o.d"
  "energy_meter_test"
  "energy_meter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_meter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
