file(REMOVE_RECURSE
  "CMakeFiles/memtap_test.dir/memtap_test.cpp.o"
  "CMakeFiles/memtap_test.dir/memtap_test.cpp.o.d"
  "memtap_test"
  "memtap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memtap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
