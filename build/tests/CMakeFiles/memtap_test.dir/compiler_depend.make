# Empty compiler generated dependencies file for memtap_test.
# This may be replaced when dependencies are built.
