file(REMOVE_RECURSE
  "CMakeFiles/page_auth_test.dir/page_auth_test.cpp.o"
  "CMakeFiles/page_auth_test.dir/page_auth_test.cpp.o.d"
  "page_auth_test"
  "page_auth_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/page_auth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
