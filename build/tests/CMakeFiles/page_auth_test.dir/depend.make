# Empty dependencies file for page_auth_test.
# This may be replaced when dependencies are built.
