file(REMOVE_RECURSE
  "CMakeFiles/page_content_test.dir/page_content_test.cpp.o"
  "CMakeFiles/page_content_test.dir/page_content_test.cpp.o.d"
  "page_content_test"
  "page_content_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/page_content_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
