# Empty dependencies file for page_content_test.
# This may be replaced when dependencies are built.
