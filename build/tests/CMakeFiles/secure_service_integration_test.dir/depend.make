# Empty dependencies file for secure_service_integration_test.
# This may be replaced when dependencies are built.
