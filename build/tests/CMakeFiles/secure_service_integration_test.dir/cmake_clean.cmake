file(REMOVE_RECURSE
  "CMakeFiles/secure_service_integration_test.dir/secure_service_integration_test.cpp.o"
  "CMakeFiles/secure_service_integration_test.dir/secure_service_integration_test.cpp.o.d"
  "secure_service_integration_test"
  "secure_service_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_service_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
