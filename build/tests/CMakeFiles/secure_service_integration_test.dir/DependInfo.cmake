
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/secure_service_integration_test.cpp" "tests/CMakeFiles/secure_service_integration_test.dir/secure_service_integration_test.cpp.o" "gcc" "tests/CMakeFiles/secure_service_integration_test.dir/secure_service_integration_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hyper/CMakeFiles/oasis_hyper.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/oasis_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/oasis_net.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/oasis_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/oasis_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/oasis_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
