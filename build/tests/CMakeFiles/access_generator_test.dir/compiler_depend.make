# Empty compiler generated dependencies file for access_generator_test.
# This may be replaced when dependencies are built.
