file(REMOVE_RECURSE
  "CMakeFiles/access_generator_test.dir/access_generator_test.cpp.o"
  "CMakeFiles/access_generator_test.dir/access_generator_test.cpp.o.d"
  "access_generator_test"
  "access_generator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/access_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
