file(REMOVE_RECURSE
  "CMakeFiles/vm_config_file_test.dir/vm_config_file_test.cpp.o"
  "CMakeFiles/vm_config_file_test.dir/vm_config_file_test.cpp.o.d"
  "vm_config_file_test"
  "vm_config_file_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_config_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
