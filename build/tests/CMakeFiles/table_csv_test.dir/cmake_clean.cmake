file(REMOVE_RECURSE
  "CMakeFiles/table_csv_test.dir/table_csv_test.cpp.o"
  "CMakeFiles/table_csv_test.dir/table_csv_test.cpp.o.d"
  "table_csv_test"
  "table_csv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_csv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
