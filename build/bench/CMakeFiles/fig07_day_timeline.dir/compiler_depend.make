# Empty compiler generated dependencies file for fig07_day_timeline.
# This may be replaced when dependencies are built.
