# Empty dependencies file for fig05_consolidation_latency.
# This may be replaced when dependencies are built.
