file(REMOVE_RECURSE
  "CMakeFiles/ablation_upload_opts.dir/ablation_upload_opts.cpp.o"
  "CMakeFiles/ablation_upload_opts.dir/ablation_upload_opts.cpp.o.d"
  "ablation_upload_opts"
  "ablation_upload_opts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_upload_opts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
