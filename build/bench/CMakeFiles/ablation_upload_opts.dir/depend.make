# Empty dependencies file for ablation_upload_opts.
# This may be replaced when dependencies are built.
