file(REMOVE_RECURSE
  "CMakeFiles/fig02_sleep_opportunities.dir/fig02_sleep_opportunities.cpp.o"
  "CMakeFiles/fig02_sleep_opportunities.dir/fig02_sleep_opportunities.cpp.o.d"
  "fig02_sleep_opportunities"
  "fig02_sleep_opportunities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_sleep_opportunities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
