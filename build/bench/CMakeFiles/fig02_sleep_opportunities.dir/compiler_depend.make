# Empty compiler generated dependencies file for fig02_sleep_opportunities.
# This may be replaced when dependencies are built.
