file(REMOVE_RECURSE
  "CMakeFiles/ablation_overcommit.dir/ablation_overcommit.cpp.o"
  "CMakeFiles/ablation_overcommit.dir/ablation_overcommit.cpp.o.d"
  "ablation_overcommit"
  "ablation_overcommit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_overcommit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
