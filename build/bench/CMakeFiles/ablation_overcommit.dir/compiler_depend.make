# Empty compiler generated dependencies file for ablation_overcommit.
# This may be replaced when dependencies are built.
