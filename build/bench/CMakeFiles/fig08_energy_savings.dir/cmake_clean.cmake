file(REMOVE_RECURSE
  "CMakeFiles/fig08_energy_savings.dir/fig08_energy_savings.cpp.o"
  "CMakeFiles/fig08_energy_savings.dir/fig08_energy_savings.cpp.o.d"
  "fig08_energy_savings"
  "fig08_energy_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_energy_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
