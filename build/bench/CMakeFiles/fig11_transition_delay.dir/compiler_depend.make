# Empty compiler generated dependencies file for fig11_transition_delay.
# This may be replaced when dependencies are built.
