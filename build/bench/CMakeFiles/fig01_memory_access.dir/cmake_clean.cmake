file(REMOVE_RECURSE
  "CMakeFiles/fig01_memory_access.dir/fig01_memory_access.cpp.o"
  "CMakeFiles/fig01_memory_access.dir/fig01_memory_access.cpp.o.d"
  "fig01_memory_access"
  "fig01_memory_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_memory_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
