# Empty dependencies file for fig01_memory_access.
# This may be replaced when dependencies are built.
