# Empty compiler generated dependencies file for fig06_app_startup.
# This may be replaced when dependencies are built.
