file(REMOVE_RECURSE
  "CMakeFiles/fig06_app_startup.dir/fig06_app_startup.cpp.o"
  "CMakeFiles/fig06_app_startup.dir/fig06_app_startup.cpp.o.d"
  "fig06_app_startup"
  "fig06_app_startup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_app_startup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
