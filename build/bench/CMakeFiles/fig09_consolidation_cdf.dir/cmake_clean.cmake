file(REMOVE_RECURSE
  "CMakeFiles/fig09_consolidation_cdf.dir/fig09_consolidation_cdf.cpp.o"
  "CMakeFiles/fig09_consolidation_cdf.dir/fig09_consolidation_cdf.cpp.o.d"
  "fig09_consolidation_cdf"
  "fig09_consolidation_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_consolidation_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
