# Empty compiler generated dependencies file for table3_memory_server.
# This may be replaced when dependencies are built.
