file(REMOVE_RECURSE
  "CMakeFiles/table3_memory_server.dir/table3_memory_server.cpp.o"
  "CMakeFiles/table3_memory_server.dir/table3_memory_server.cpp.o.d"
  "table3_memory_server"
  "table3_memory_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_memory_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
