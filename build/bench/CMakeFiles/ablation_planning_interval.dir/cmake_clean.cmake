file(REMOVE_RECURSE
  "CMakeFiles/ablation_planning_interval.dir/ablation_planning_interval.cpp.o"
  "CMakeFiles/ablation_planning_interval.dir/ablation_planning_interval.cpp.o.d"
  "ablation_planning_interval"
  "ablation_planning_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_planning_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
