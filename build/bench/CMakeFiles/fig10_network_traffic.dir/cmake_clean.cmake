file(REMOVE_RECURSE
  "CMakeFiles/fig10_network_traffic.dir/fig10_network_traffic.cpp.o"
  "CMakeFiles/fig10_network_traffic.dir/fig10_network_traffic.cpp.o.d"
  "fig10_network_traffic"
  "fig10_network_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_network_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
