# Empty compiler generated dependencies file for fig10_network_traffic.
# This may be replaced when dependencies are built.
