# Empty compiler generated dependencies file for table1_power_profiles.
# This may be replaced when dependencies are built.
