file(REMOVE_RECURSE
  "CMakeFiles/table1_power_profiles.dir/table1_power_profiles.cpp.o"
  "CMakeFiles/table1_power_profiles.dir/table1_power_profiles.cpp.o.d"
  "table1_power_profiles"
  "table1_power_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_power_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
