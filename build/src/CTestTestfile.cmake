# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("trace")
subdirs("mem")
subdirs("net")
subdirs("power")
subdirs("hyper")
subdirs("ctrl")
subdirs("cluster")
subdirs("core")
