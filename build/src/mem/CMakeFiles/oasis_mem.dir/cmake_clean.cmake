file(REMOVE_RECURSE
  "CMakeFiles/oasis_mem.dir/access_generator.cc.o"
  "CMakeFiles/oasis_mem.dir/access_generator.cc.o.d"
  "CMakeFiles/oasis_mem.dir/bitmap.cc.o"
  "CMakeFiles/oasis_mem.dir/bitmap.cc.o.d"
  "CMakeFiles/oasis_mem.dir/compression.cc.o"
  "CMakeFiles/oasis_mem.dir/compression.cc.o.d"
  "CMakeFiles/oasis_mem.dir/dedup.cc.o"
  "CMakeFiles/oasis_mem.dir/dedup.cc.o.d"
  "CMakeFiles/oasis_mem.dir/memory_image.cc.o"
  "CMakeFiles/oasis_mem.dir/memory_image.cc.o.d"
  "CMakeFiles/oasis_mem.dir/page_content.cc.o"
  "CMakeFiles/oasis_mem.dir/page_content.cc.o.d"
  "CMakeFiles/oasis_mem.dir/working_set.cc.o"
  "CMakeFiles/oasis_mem.dir/working_set.cc.o.d"
  "liboasis_mem.a"
  "liboasis_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oasis_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
