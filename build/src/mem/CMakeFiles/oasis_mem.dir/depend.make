# Empty dependencies file for oasis_mem.
# This may be replaced when dependencies are built.
