file(REMOVE_RECURSE
  "liboasis_mem.a"
)
