
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/access_generator.cc" "src/mem/CMakeFiles/oasis_mem.dir/access_generator.cc.o" "gcc" "src/mem/CMakeFiles/oasis_mem.dir/access_generator.cc.o.d"
  "/root/repo/src/mem/bitmap.cc" "src/mem/CMakeFiles/oasis_mem.dir/bitmap.cc.o" "gcc" "src/mem/CMakeFiles/oasis_mem.dir/bitmap.cc.o.d"
  "/root/repo/src/mem/compression.cc" "src/mem/CMakeFiles/oasis_mem.dir/compression.cc.o" "gcc" "src/mem/CMakeFiles/oasis_mem.dir/compression.cc.o.d"
  "/root/repo/src/mem/dedup.cc" "src/mem/CMakeFiles/oasis_mem.dir/dedup.cc.o" "gcc" "src/mem/CMakeFiles/oasis_mem.dir/dedup.cc.o.d"
  "/root/repo/src/mem/memory_image.cc" "src/mem/CMakeFiles/oasis_mem.dir/memory_image.cc.o" "gcc" "src/mem/CMakeFiles/oasis_mem.dir/memory_image.cc.o.d"
  "/root/repo/src/mem/page_content.cc" "src/mem/CMakeFiles/oasis_mem.dir/page_content.cc.o" "gcc" "src/mem/CMakeFiles/oasis_mem.dir/page_content.cc.o.d"
  "/root/repo/src/mem/working_set.cc" "src/mem/CMakeFiles/oasis_mem.dir/working_set.cc.o" "gcc" "src/mem/CMakeFiles/oasis_mem.dir/working_set.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/oasis_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
