file(REMOVE_RECURSE
  "liboasis_power.a"
)
