file(REMOVE_RECURSE
  "CMakeFiles/oasis_power.dir/energy_meter.cc.o"
  "CMakeFiles/oasis_power.dir/energy_meter.cc.o.d"
  "CMakeFiles/oasis_power.dir/power_model.cc.o"
  "CMakeFiles/oasis_power.dir/power_model.cc.o.d"
  "liboasis_power.a"
  "liboasis_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oasis_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
