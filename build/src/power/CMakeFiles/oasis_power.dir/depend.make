# Empty dependencies file for oasis_power.
# This may be replaced when dependencies are built.
