file(REMOVE_RECURSE
  "liboasis_common.a"
)
