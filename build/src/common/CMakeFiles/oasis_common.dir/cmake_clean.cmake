file(REMOVE_RECURSE
  "CMakeFiles/oasis_common.dir/csv.cc.o"
  "CMakeFiles/oasis_common.dir/csv.cc.o.d"
  "CMakeFiles/oasis_common.dir/log.cc.o"
  "CMakeFiles/oasis_common.dir/log.cc.o.d"
  "CMakeFiles/oasis_common.dir/rng.cc.o"
  "CMakeFiles/oasis_common.dir/rng.cc.o.d"
  "CMakeFiles/oasis_common.dir/stats.cc.o"
  "CMakeFiles/oasis_common.dir/stats.cc.o.d"
  "CMakeFiles/oasis_common.dir/status.cc.o"
  "CMakeFiles/oasis_common.dir/status.cc.o.d"
  "CMakeFiles/oasis_common.dir/table.cc.o"
  "CMakeFiles/oasis_common.dir/table.cc.o.d"
  "CMakeFiles/oasis_common.dir/units.cc.o"
  "CMakeFiles/oasis_common.dir/units.cc.o.d"
  "liboasis_common.a"
  "liboasis_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oasis_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
