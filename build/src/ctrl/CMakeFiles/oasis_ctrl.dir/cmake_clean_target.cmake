file(REMOVE_RECURSE
  "liboasis_ctrl.a"
)
