# Empty compiler generated dependencies file for oasis_ctrl.
# This may be replaced when dependencies are built.
