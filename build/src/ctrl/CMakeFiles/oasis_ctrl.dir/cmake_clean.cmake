file(REMOVE_RECURSE
  "CMakeFiles/oasis_ctrl.dir/controller.cc.o"
  "CMakeFiles/oasis_ctrl.dir/controller.cc.o.d"
  "CMakeFiles/oasis_ctrl.dir/host_agent.cc.o"
  "CMakeFiles/oasis_ctrl.dir/host_agent.cc.o.d"
  "CMakeFiles/oasis_ctrl.dir/messages.cc.o"
  "CMakeFiles/oasis_ctrl.dir/messages.cc.o.d"
  "CMakeFiles/oasis_ctrl.dir/rpc_bus.cc.o"
  "CMakeFiles/oasis_ctrl.dir/rpc_bus.cc.o.d"
  "CMakeFiles/oasis_ctrl.dir/vm_config_file.cc.o"
  "CMakeFiles/oasis_ctrl.dir/vm_config_file.cc.o.d"
  "liboasis_ctrl.a"
  "liboasis_ctrl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oasis_ctrl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
