# Empty compiler generated dependencies file for oasis_hyper.
# This may be replaced when dependencies are built.
