file(REMOVE_RECURSE
  "liboasis_hyper.a"
)
