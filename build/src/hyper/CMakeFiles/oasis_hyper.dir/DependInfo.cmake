
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hyper/memory_server.cc" "src/hyper/CMakeFiles/oasis_hyper.dir/memory_server.cc.o" "gcc" "src/hyper/CMakeFiles/oasis_hyper.dir/memory_server.cc.o.d"
  "/root/repo/src/hyper/memtap.cc" "src/hyper/CMakeFiles/oasis_hyper.dir/memtap.cc.o" "gcc" "src/hyper/CMakeFiles/oasis_hyper.dir/memtap.cc.o.d"
  "/root/repo/src/hyper/migration_model.cc" "src/hyper/CMakeFiles/oasis_hyper.dir/migration_model.cc.o" "gcc" "src/hyper/CMakeFiles/oasis_hyper.dir/migration_model.cc.o.d"
  "/root/repo/src/hyper/page_auth.cc" "src/hyper/CMakeFiles/oasis_hyper.dir/page_auth.cc.o" "gcc" "src/hyper/CMakeFiles/oasis_hyper.dir/page_auth.cc.o.d"
  "/root/repo/src/hyper/precopy.cc" "src/hyper/CMakeFiles/oasis_hyper.dir/precopy.cc.o" "gcc" "src/hyper/CMakeFiles/oasis_hyper.dir/precopy.cc.o.d"
  "/root/repo/src/hyper/vm.cc" "src/hyper/CMakeFiles/oasis_hyper.dir/vm.cc.o" "gcc" "src/hyper/CMakeFiles/oasis_hyper.dir/vm.cc.o.d"
  "/root/repo/src/hyper/workloads.cc" "src/hyper/CMakeFiles/oasis_hyper.dir/workloads.cc.o" "gcc" "src/hyper/CMakeFiles/oasis_hyper.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/oasis_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/oasis_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/oasis_net.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/oasis_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/oasis_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
