file(REMOVE_RECURSE
  "CMakeFiles/oasis_hyper.dir/memory_server.cc.o"
  "CMakeFiles/oasis_hyper.dir/memory_server.cc.o.d"
  "CMakeFiles/oasis_hyper.dir/memtap.cc.o"
  "CMakeFiles/oasis_hyper.dir/memtap.cc.o.d"
  "CMakeFiles/oasis_hyper.dir/migration_model.cc.o"
  "CMakeFiles/oasis_hyper.dir/migration_model.cc.o.d"
  "CMakeFiles/oasis_hyper.dir/page_auth.cc.o"
  "CMakeFiles/oasis_hyper.dir/page_auth.cc.o.d"
  "CMakeFiles/oasis_hyper.dir/precopy.cc.o"
  "CMakeFiles/oasis_hyper.dir/precopy.cc.o.d"
  "CMakeFiles/oasis_hyper.dir/vm.cc.o"
  "CMakeFiles/oasis_hyper.dir/vm.cc.o.d"
  "CMakeFiles/oasis_hyper.dir/workloads.cc.o"
  "CMakeFiles/oasis_hyper.dir/workloads.cc.o.d"
  "liboasis_hyper.a"
  "liboasis_hyper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oasis_hyper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
