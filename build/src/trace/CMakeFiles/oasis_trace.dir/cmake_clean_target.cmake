file(REMOVE_RECURSE
  "liboasis_trace.a"
)
