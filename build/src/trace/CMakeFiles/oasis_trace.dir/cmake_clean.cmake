file(REMOVE_RECURSE
  "CMakeFiles/oasis_trace.dir/activity_trace.cc.o"
  "CMakeFiles/oasis_trace.dir/activity_trace.cc.o.d"
  "CMakeFiles/oasis_trace.dir/trace_generator.cc.o"
  "CMakeFiles/oasis_trace.dir/trace_generator.cc.o.d"
  "CMakeFiles/oasis_trace.dir/trace_io.cc.o"
  "CMakeFiles/oasis_trace.dir/trace_io.cc.o.d"
  "CMakeFiles/oasis_trace.dir/trace_stats.cc.o"
  "CMakeFiles/oasis_trace.dir/trace_stats.cc.o.d"
  "liboasis_trace.a"
  "liboasis_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oasis_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
