# Empty dependencies file for oasis_trace.
# This may be replaced when dependencies are built.
