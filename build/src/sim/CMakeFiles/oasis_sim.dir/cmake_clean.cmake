file(REMOVE_RECURSE
  "CMakeFiles/oasis_sim.dir/event_queue.cc.o"
  "CMakeFiles/oasis_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/oasis_sim.dir/simulator.cc.o"
  "CMakeFiles/oasis_sim.dir/simulator.cc.o.d"
  "liboasis_sim.a"
  "liboasis_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oasis_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
