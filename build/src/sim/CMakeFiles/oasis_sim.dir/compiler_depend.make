# Empty compiler generated dependencies file for oasis_sim.
# This may be replaced when dependencies are built.
