file(REMOVE_RECURSE
  "liboasis_sim.a"
)
