file(REMOVE_RECURSE
  "liboasis_core.a"
)
