file(REMOVE_RECURSE
  "CMakeFiles/oasis_core.dir/oasis.cc.o"
  "CMakeFiles/oasis_core.dir/oasis.cc.o.d"
  "liboasis_core.a"
  "liboasis_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oasis_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
