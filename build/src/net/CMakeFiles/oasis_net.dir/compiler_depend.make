# Empty compiler generated dependencies file for oasis_net.
# This may be replaced when dependencies are built.
