file(REMOVE_RECURSE
  "liboasis_net.a"
)
