file(REMOVE_RECURSE
  "CMakeFiles/oasis_net.dir/link.cc.o"
  "CMakeFiles/oasis_net.dir/link.cc.o.d"
  "CMakeFiles/oasis_net.dir/traffic.cc.o"
  "CMakeFiles/oasis_net.dir/traffic.cc.o.d"
  "liboasis_net.a"
  "liboasis_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oasis_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
