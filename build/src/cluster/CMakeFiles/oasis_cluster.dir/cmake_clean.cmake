file(REMOVE_RECURSE
  "CMakeFiles/oasis_cluster.dir/cluster_types.cc.o"
  "CMakeFiles/oasis_cluster.dir/cluster_types.cc.o.d"
  "CMakeFiles/oasis_cluster.dir/host.cc.o"
  "CMakeFiles/oasis_cluster.dir/host.cc.o.d"
  "CMakeFiles/oasis_cluster.dir/idleness.cc.o"
  "CMakeFiles/oasis_cluster.dir/idleness.cc.o.d"
  "CMakeFiles/oasis_cluster.dir/manager.cc.o"
  "CMakeFiles/oasis_cluster.dir/manager.cc.o.d"
  "liboasis_cluster.a"
  "liboasis_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oasis_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
