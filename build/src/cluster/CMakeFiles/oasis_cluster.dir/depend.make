# Empty dependencies file for oasis_cluster.
# This may be replaced when dependencies are built.
