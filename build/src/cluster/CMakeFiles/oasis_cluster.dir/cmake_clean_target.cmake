file(REMOVE_RECURSE
  "liboasis_cluster.a"
)
