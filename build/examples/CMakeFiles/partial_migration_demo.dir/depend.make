# Empty dependencies file for partial_migration_demo.
# This may be replaced when dependencies are built.
