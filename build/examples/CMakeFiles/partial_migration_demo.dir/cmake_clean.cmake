file(REMOVE_RECURSE
  "CMakeFiles/partial_migration_demo.dir/partial_migration_demo.cpp.o"
  "CMakeFiles/partial_migration_demo.dir/partial_migration_demo.cpp.o.d"
  "partial_migration_demo"
  "partial_migration_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partial_migration_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
