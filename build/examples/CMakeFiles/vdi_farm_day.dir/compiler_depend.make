# Empty compiler generated dependencies file for vdi_farm_day.
# This may be replaced when dependencies are built.
