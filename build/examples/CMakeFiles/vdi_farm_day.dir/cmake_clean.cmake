file(REMOVE_RECURSE
  "CMakeFiles/vdi_farm_day.dir/vdi_farm_day.cpp.o"
  "CMakeFiles/vdi_farm_day.dir/vdi_farm_day.cpp.o.d"
  "vdi_farm_day"
  "vdi_farm_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdi_farm_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
