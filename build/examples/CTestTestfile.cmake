# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "fulltopartial")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_partial_migration_demo "/root/repo/build/examples/partial_migration_demo")
set_tests_properties(example_partial_migration_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_control_plane_tour "/root/repo/build/examples/control_plane_tour")
set_tests_properties(example_control_plane_tour PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_tool "/root/repo/build/examples/trace_tool" "gen" "/root/repo/build/examples/smoke.trace" "20" "weekend" "3")
set_tests_properties(example_trace_tool PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_capacity_planner "/root/repo/build/examples/capacity_planner" "4" "8" "70")
set_tests_properties(example_capacity_planner PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
