#!/usr/bin/env sh
# Regenerates the golden files pinned by the `ctest -L golden` suite
# (quickstart, fig07, fig08, table3, perf_sweep, datacenter_day,
# ablation_policy, heterogeneous_fleet) from the binaries in a build tree:
#
#   tools/update_golden.sh [build_dir]     # default build dir: ./build
#
# The refreshed files land in tests/golden/; review the diff before
# committing — the whole point of the suite is that behavioral drift is a
# reviewed change, never an accident.
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$repo/build"}

if [ ! -d "$build" ]; then
  echo "update_golden: build dir $build not found (run cmake -B build -S . first)" >&2
  exit 1
fi
# RunGolden.cmake runs the binary from a scratch working directory, so the
# build dir must be absolute.
build=$(CDPATH= cd -- "$build" && pwd)

update() {
  name=$1
  binary=$2
  extra_env=${3:-}
  cmake -DBINARY="$build/$binary" \
        -DGOLDEN="$repo/tests/golden/$name.txt" \
        -DWORK="$build/golden_work" \
        -DUPDATE=1 \
        -DEXTRA_ENV="$extra_env" \
        -P "$repo/cmake/RunGolden.cmake"
}

update quickstart examples/quickstart
update fig07 bench/fig07_day_timeline
update fig08 bench/fig08_energy_savings
update table3 bench/table3_memory_server
update perf_sweep bench/perf_sweep
update datacenter_day bench/datacenter_day OASIS_DC_RACKS=8
update ablation_policy bench/ablation_policy
update heterogeneous_fleet bench/heterogeneous_fleet

echo "update_golden: done - review 'git diff tests/golden/' before committing"
