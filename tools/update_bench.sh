#!/usr/bin/env sh
# Refreshes the repo-root BENCH_sweep.json — the committed perf snapshot that
# tracks the parallel runner's throughput and scaling diagnosis across PRs:
#
#   tools/update_bench.sh [build_dir]      # default build dir: ./build
#
# Runs bench/perf_sweep with OASIS_PROF=summary so every sweep point carries
# its wall-clock profile (parallel efficiency, merge-serial fraction, named
# bottleneck). The snapshot also records, per sweep point, the effective
# worker count after the runner's clamp (plus any requested job counts that
# collapsed to an already-measured count on this host), and a "plan_modes"
# section with serial events/s under both planner backends
# (OASIS_PLAN=full and incremental) so the incremental planner's speedup is
# tracked across PRs. Absolute numbers are machine-dependent — review the
# diff for the *shape* (efficiency, fractions, bottleneck, mode ratio), not
# the raw seconds.
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$repo/build"}

if [ ! -x "$build/bench/perf_sweep" ]; then
  echo "update_bench: $build/bench/perf_sweep not found (build the repo first)" >&2
  exit 1
fi

# Stamp the snapshot with the revision it measured; hardware_cores is
# stamped by the binary itself. Outside a git checkout the stamp degrades
# to "unknown" rather than failing the refresh.
git_sha=$(git -C "$repo" rev-parse --short HEAD 2>/dev/null || echo unknown)

# Sweep to jobs=4 by default (export OASIS_JOBS to override) so the
# committed snapshot always carries the scaling story, even on small boxes
# where hardware_concurrency would stop the sweep at jobs=1.
OASIS_JOBS="${OASIS_JOBS:-4}" \
OASIS_PROF=summary \
OASIS_BENCH_JSON="$repo/BENCH_sweep.json" \
OASIS_BENCH_GIT_SHA="$git_sha" \
  "$build/bench/perf_sweep"

# The strategy ablation splices its per-strategy optimality gaps into the
# same snapshot as a "policy_gaps" member (CI's oracle-gap smoke gate reads
# it), so it must run after perf_sweep rewrites the file whole.
OASIS_BENCH_JSON="$repo/BENCH_sweep.json" \
  "$build/bench/ablation_policy"

echo "update_bench: wrote $repo/BENCH_sweep.json - review 'git diff BENCH_sweep.json'"
